//! The schedule linter: named invariant rules over emitted programs, plus
//! the corpus campaign that hammers thousands of generated and imported
//! circuits through them.
//!
//! The gated suite only exercises the paper benchmarks, so the
//! routing/schedule invariants are verified on a few dozen circuits. This
//! module turns each invariant into a named [`LintRule`] that can replay
//! *any* emitted [`CompiledProgram`] — from a QASM file, a seeded generator
//! spec or a service JSONL log — and a campaign runner
//! ([`run_campaign`]) that sweeps seeded random circuits across all four
//! routing strategies × 1–4 AOD arrays × the [`ArchVariant`] grid, shrinks
//! any failing circuit by halving its gate list and persists the minimal
//! reproducer as a self-contained QASM + config JSON pair under
//! `bench/reproducers/`.
//!
//! The rules:
//!
//! | rule | invariant |
//! |---|---|
//! | `schedule-validate` | the program simulates cleanly and preserves the circuit's CZ gates |
//! | `aod-batches` | every move group lowers to per-AOD batches passing [`validate_aod_batches`] |
//! | `intra-aod-overlap` | no AOD array owns two overlapping busy windows |
//! | `storage-before-interaction` | the multi-AOD scheduler never puts a storage-bound window after an interaction window within a stage transition |
//! | `fidelity-dominance` | the auto-tuner never moves slower than any portfolio member, and never scores below the worst member |
//! | `free-site-agreement` | the index-pruned free-site search returns the same site as the linear reference scan |
//!
//! Everything here is deterministic: the corpus generator mirrors the
//! seeded PRNG of `tests/routing_properties.rs`, shrinking is
//! deterministic halving, and reproducer files carry no timestamps — the
//! same seed always produces the same reproducer bytes.

use crate::harness::ArchVariant;
use powermove::{
    movement_wall_clock, CompilerConfig, FreeSiteHarness, PowerMoveCompiler, RoutingConfig,
};
use powermove_circuit::{qasm, Circuit, Qubit};
use powermove_exec::ThreadPool;
use powermove_fidelity::evaluate_program;
use powermove_hardware::{validate_aod_batches, AodBatch, Architecture, Point, SiteId, Zone};
use powermove_schedule::{validate, CompiledProgram, Instruction, Timeline};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize, Value};
use std::path::{Path, PathBuf};

/// Movement-wall-clock slack for the auto-dominance comparison: replaying
/// the selected member is byte-identical, so only accumulated float error
/// separates the clocks.
pub const MOVEMENT_EPS: f64 = 1e-12;

/// Fidelity slack for the auto-dominance comparison.
pub const FIDELITY_EPS: f64 = 1e-9;

/// One named schedule invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LintRule {
    /// The program simulates cleanly and preserves the circuit's CZ count.
    ScheduleValidate,
    /// Every move group lowers to valid per-AOD batches.
    AodBatches,
    /// No AOD array owns two overlapping busy windows.
    IntraAodOverlap,
    /// No storage-bound window after an interaction window within a stage
    /// transition (multi-AOD scheduler only).
    StorageBeforeInteraction,
    /// The auto-tuner dominates its portfolio members.
    FidelityDominance,
    /// Pruned and linear free-site searches agree.
    FreeSiteAgreement,
}

impl LintRule {
    /// Every rule, in report order.
    pub const ALL: [LintRule; 6] = [
        LintRule::ScheduleValidate,
        LintRule::AodBatches,
        LintRule::IntraAodOverlap,
        LintRule::StorageBeforeInteraction,
        LintRule::FidelityDominance,
        LintRule::FreeSiteAgreement,
    ];

    /// The stable kebab-case rule name used in reports and reproducer
    /// filenames.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LintRule::ScheduleValidate => "schedule-validate",
            LintRule::AodBatches => "aod-batches",
            LintRule::IntraAodOverlap => "intra-aod-overlap",
            LintRule::StorageBeforeInteraction => "storage-before-interaction",
            LintRule::FidelityDominance => "fidelity-dominance",
            LintRule::FreeSiteAgreement => "free-site-agreement",
        }
    }

    /// Parses a rule from its [`LintRule::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<LintRule> {
        LintRule::ALL.into_iter().find(|r| r.name() == name)
    }
}

impl std::fmt::Display for LintRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule firing on one compiled program.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LintViolation {
    /// The rule that fired.
    pub rule: LintRule,
    /// Routing strategy of the offending program (`"greedy"`,
    /// `"lookahead2"`, `"multi-aod"`, `"auto"`, or `"-"` for inputs linted
    /// as a single pre-compiled program).
    pub strategy: String,
    /// Human-readable description of the violation.
    pub message: String,
}

impl LintViolation {
    fn new(rule: LintRule, strategy: &str, message: String) -> Self {
        LintViolation {
            rule,
            strategy: strategy.to_string(),
            message,
        }
    }
}

/// The four routing strategies the linter replays, auto last so its
/// portfolio members are compiled first.
#[must_use]
pub fn lint_strategies() -> [(&'static str, RoutingConfig); 4] {
    [
        ("greedy", RoutingConfig::greedy()),
        ("lookahead2", RoutingConfig::lookahead(2)),
        ("multi-aod", RoutingConfig::multi_aod()),
        ("auto", RoutingConfig::auto()),
    ]
}

// ---------------------------------------------------------------------------
// Rules over a single compiled program.
// ---------------------------------------------------------------------------

/// `schedule-validate`: the program simulates cleanly; when
/// `expected_cz` is given, its CZ count must also match the source circuit.
///
/// # Errors
///
/// Returns the violation message.
pub fn check_schedule(program: &CompiledProgram, expected_cz: Option<usize>) -> Result<(), String> {
    validate(program).map_err(|e| format!("invalid program: {e}"))?;
    if let Some(expected) = expected_cz {
        let compiled = program.cz_gate_count();
        if compiled != expected {
            return Err(format!(
                "{compiled} CZ gates compiled, circuit has {expected}"
            ));
        }
    }
    Ok(())
}

/// `aod-batches`: every move group lowers to a window of per-AOD batches
/// that passes the hardware's batch validation.
///
/// # Errors
///
/// Returns the violation message.
pub fn check_aod_batches(program: &CompiledProgram) -> Result<(), String> {
    let arch = program.architecture();
    for (index, instruction) in program.instructions().iter().enumerate() {
        if let Instruction::MoveGroup { coll_moves } = instruction {
            let batches: Vec<AodBatch> = coll_moves
                .iter()
                .map(|cm| AodBatch::new(cm.aod, cm.trap_moves(arch)))
                .collect();
            validate_aod_batches(&batches)
                .map_err(|e| format!("instruction {index}: invalid AOD batches: {e}"))?;
        }
    }
    Ok(())
}

/// `intra-aod-overlap`: no AOD array may own two overlapping busy windows.
///
/// # Errors
///
/// Returns the violation message.
pub fn check_intra_aod_overlap(program: &CompiledProgram) -> Result<(), String> {
    let windows = Timeline::of(program).aod_windows(program);
    for (i, a) in windows.iter().enumerate() {
        for b in &windows[i + 1..] {
            if a.aod == b.aod && a.overlaps(b) {
                return Err(format!("AOD {} double-booked", a.aod));
            }
        }
    }
    Ok(())
}

/// `storage-before-interaction`: within every stage transition, a
/// storage-bound window must never come after an interaction window (the
/// move-in-first guarantee of the multi-AOD scheduler's balanced packing).
///
/// # Errors
///
/// Returns the violation message.
pub fn check_storage_before_interaction(program: &CompiledProgram) -> Result<(), String> {
    let grid = program.architecture().grid();
    let mut saw_interaction_window = false;
    for (index, instruction) in program.instructions().iter().enumerate() {
        match instruction {
            Instruction::RydbergStage { .. } => saw_interaction_window = false,
            Instruction::MoveGroup { coll_moves } => {
                let lands_in = |zone: Zone| {
                    coll_moves
                        .iter()
                        .flat_map(|cm| cm.moves.iter())
                        .any(|m| grid.zone_of(m.to) == zone)
                };
                if lands_in(Zone::Storage) && saw_interaction_window {
                    return Err(format!(
                        "instruction {index}: storage-bound window scheduled after an \
                         interaction window"
                    ));
                }
                if lands_in(Zone::Compute) {
                    saw_interaction_window = true;
                }
            }
            Instruction::OneQubitLayer { .. } => {}
        }
    }
    Ok(())
}

/// `fidelity-dominance`: the auto-tuner's movement wall clock must not
/// exceed any portfolio member's (the replay is byte-identical, so only
/// [`MOVEMENT_EPS`] float slack is allowed), and its fidelity must not drop
/// below the worst member's.
///
/// # Errors
///
/// Returns the violation message.
pub fn check_fidelity_dominance(
    auto: &CompiledProgram,
    members: &[(&str, &CompiledProgram)],
) -> Result<(), String> {
    if members.is_empty() {
        return Ok(());
    }
    let movement = |p: &CompiledProgram| movement_wall_clock(p.instructions(), p.architecture());
    let fidelity = |p: &CompiledProgram| -> Result<f64, String> {
        Ok(evaluate_program(p)
            .map_err(|e| format!("fidelity evaluation failed: {e}"))?
            .fidelity_excluding_one_qubit())
    };
    let auto_movement = movement(auto);
    for (name, member) in members {
        let member_movement = movement(member);
        if auto_movement > member_movement + MOVEMENT_EPS {
            return Err(format!(
                "auto moves {auto_movement} s, worse than member {name} ({member_movement} s)"
            ));
        }
    }
    let auto_fidelity = fidelity(auto)?;
    let mut worst = f64::INFINITY;
    for (_, member) in members {
        worst = worst.min(fidelity(member)?);
    }
    if auto_fidelity < worst - FIDELITY_EPS {
        return Err(format!(
            "auto fidelity {auto_fidelity} below the worst portfolio member ({worst})"
        ));
    }
    Ok(())
}

/// `free-site-agreement` over an explicit harness: for every anchor, the
/// index-pruned search and the linear reference scan must return the same
/// site in both zones. The bias/`min_bias` pair is the caller's claim —
/// handing the search an inadmissible lower bound is exactly how the rule's
/// firing unit test drives a divergence.
///
/// # Errors
///
/// Returns the violation message.
pub fn check_free_site_agreement_with(
    harness: &mut FreeSiteHarness,
    anchors: &[Point],
    min_bias: f64,
    bias: &dyn Fn(SiteId, Point) -> f64,
) -> Result<(), String> {
    for zone in [Zone::Compute, Zone::Storage] {
        for &anchor in anchors {
            let linear = harness.best_linear(zone, anchor, bias);
            let pruned = harness.best(zone, anchor, min_bias, bias);
            if pruned != linear {
                return Err(format!(
                    "pruned search found {pruned:?} but linear scan found {linear:?} \
                     ({zone:?} zone, anchor ({}, {}))",
                    anchor.x, anchor.y
                ));
            }
        }
    }
    Ok(())
}

/// `free-site-agreement` for a compiled program: seeds the harness from the
/// program's initial layout and sweeps zone-corner/center anchors under the
/// zero bias and an anchor-column distance bias (both admissible with a
/// zero lower bound).
///
/// # Errors
///
/// Returns the violation message.
pub fn check_free_site_agreement(program: &CompiledProgram) -> Result<(), String> {
    let arch = program.architecture().clone();
    let grid = arch.grid().clone();
    let mut harness = FreeSiteHarness::from_layout(arch, program.initial_layout());
    let mut anchors = Vec::new();
    for zone in [Zone::Compute, Zone::Storage] {
        let sites: Vec<SiteId> = grid.sites_in(zone).collect();
        for pick in [0, sites.len() / 2, sites.len().saturating_sub(1)] {
            if let Some(&site) = sites.get(pick) {
                anchors.push(grid.position(site));
            }
        }
    }
    anchors.dedup_by(|a, b| a.x == b.x && a.y == b.y);
    check_free_site_agreement_with(&mut harness, &anchors, 0.0, &|_, _| 0.0)?;
    let column_bias = move |site: SiteId, anchor: Point| (grid.position(site).x - anchor.x).abs();
    check_free_site_agreement_with(&mut harness, &anchors, 0.0, &column_bias)
}

// ---------------------------------------------------------------------------
// The full-program lint driver.
// ---------------------------------------------------------------------------

/// Compiles `circuit` on `arch` under all four routing strategies and runs
/// every applicable rule, returning all violations (empty = clean).
///
/// `storage-before-interaction` only gates the multi-AOD scheduler (other
/// routers have no window-class ordering contract), and
/// `fidelity-dominance` compares the auto-tuner against the other three
/// strategies as its portfolio members.
#[must_use]
pub fn lint_circuit(circuit: &Circuit, arch: &Architecture) -> Vec<LintViolation> {
    let mut violations = Vec::new();
    let mut programs: Vec<(&'static str, CompiledProgram)> = Vec::new();
    for (name, routing) in lint_strategies() {
        let compiler = PowerMoveCompiler::new(
            CompilerConfig::default()
                .with_threads(1)
                .with_routing(routing),
        );
        match compiler.compile(circuit, arch) {
            Ok(program) => programs.push((name, program)),
            Err(e) => violations.push(LintViolation::new(
                LintRule::ScheduleValidate,
                name,
                format!("compilation failed: {e}"),
            )),
        }
    }
    for (name, program) in &programs {
        violations.extend(lint_program(program, Some(circuit.cz_count()), name));
        if *name == "multi-aod" {
            if let Err(message) = check_storage_before_interaction(program) {
                violations.push(LintViolation::new(
                    LintRule::StorageBeforeInteraction,
                    name,
                    message,
                ));
            }
        }
    }
    let auto = programs.iter().find(|(name, _)| *name == "auto");
    if let Some((_, auto_program)) = auto {
        let members: Vec<(&str, &CompiledProgram)> = programs
            .iter()
            .filter(|(name, _)| *name != "auto")
            .map(|(name, program)| (*name, program))
            .collect();
        if let Err(message) = check_fidelity_dominance(auto_program, &members) {
            violations.push(LintViolation::new(
                LintRule::FidelityDominance,
                "auto",
                message,
            ));
        }
    }
    violations
}

/// Runs the single-program rules (`schedule-validate`, `aod-batches`,
/// `intra-aod-overlap`, `free-site-agreement`) on one program, labelling
/// violations with `strategy`. The cross-program rules
/// (`storage-before-interaction`, `fidelity-dominance`) live in
/// [`lint_circuit`], which knows which strategy produced what.
#[must_use]
pub fn lint_program(
    program: &CompiledProgram,
    expected_cz: Option<usize>,
    strategy: &str,
) -> Vec<LintViolation> {
    let mut violations = Vec::new();
    let mut push = |rule: LintRule, result: Result<(), String>| {
        if let Err(message) = result {
            violations.push(LintViolation::new(rule, strategy, message));
        }
    };
    push(
        LintRule::ScheduleValidate,
        check_schedule(program, expected_cz),
    );
    push(LintRule::AodBatches, check_aod_batches(program));
    push(LintRule::IntraAodOverlap, check_intra_aod_overlap(program));
    push(
        LintRule::FreeSiteAgreement,
        check_free_site_agreement(program),
    );
    violations
}

// ---------------------------------------------------------------------------
// The seeded corpus generator (mirrors tests/routing_properties.rs).
// ---------------------------------------------------------------------------

/// One generated gate, kept as data so a failing case can be shrunk and
/// rebuilt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CorpusOp {
    /// Hadamard on one qubit.
    H(u32),
    /// Z rotation (fixed 0.17 rad test angle) on one qubit.
    Rz(u32),
    /// CZ between two distinct qubits.
    Cz(u32, u32),
}

/// A reproducible random corpus case: width, gate list, and the
/// architecture cell (AOD count × [`ArchVariant`]) derived from the seed.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusInstance {
    /// Generator seed (also the reproducer's identity).
    pub seed: u64,
    /// Circuit width.
    pub num_qubits: u32,
    /// The gate list.
    pub ops: Vec<CorpusOp>,
    /// Number of AOD arrays (1–4, cycled by seed).
    pub num_aods: usize,
    /// Hardware variant (cycled by seed across [`ArchVariant::ALL`]).
    pub arch: ArchVariant,
    /// Whether the circuit is round-tripped through the QASM importer
    /// before compiling (every 16th seed), so the campaign also exercises
    /// the untrusted-input parser.
    pub via_qasm: bool,
}

impl CorpusInstance {
    /// Generates the instance for `seed`: 4–10 qubits, 2–28 gates, AOD
    /// count and architecture variant cycled so the sweep covers the full
    /// 4 × 4 cell grid evenly.
    #[must_use]
    pub fn generate(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let num_qubits = rng.gen_range(4..=10_u32);
        let num_ops = rng.gen_range(2..=28_usize);
        let ops = (0..num_ops)
            .filter_map(|_| {
                let a = rng.gen_range(0..num_qubits);
                let b = rng.gen_range(0..num_qubits);
                match rng.gen_range(0_u8..4) {
                    0 => Some(CorpusOp::H(a)),
                    1 => Some(CorpusOp::Rz(a)),
                    _ => (a != b).then_some(CorpusOp::Cz(a, b)),
                }
            })
            .collect();
        CorpusInstance {
            seed,
            num_qubits,
            ops,
            num_aods: 1 + (seed % 4) as usize,
            arch: ArchVariant::ALL[((seed / 4) % 4) as usize],
            via_qasm: seed % 16 == 0,
        }
    }

    /// Builds the circuit; `via_qasm` instances additionally round-trip
    /// through the QASM emitter + importer.
    ///
    /// # Errors
    ///
    /// Returns the QASM importer's error message if the round trip fails —
    /// itself a lintable bug.
    pub fn circuit(&self) -> Result<Circuit, String> {
        let mut circuit = Circuit::new(self.num_qubits);
        for op in &self.ops {
            match *op {
                CorpusOp::H(q) => circuit.h(Qubit::new(q)).expect("in range"),
                CorpusOp::Rz(q) => circuit.rz(Qubit::new(q), 0.17).expect("in range"),
                CorpusOp::Cz(a, b) => circuit
                    .cz(Qubit::new(a), Qubit::new(b))
                    .expect("in range and distinct"),
            }
        }
        if self.via_qasm {
            let text = qasm::to_qasm(&circuit);
            let reimported =
                qasm::from_qasm(&text).map_err(|e| format!("qasm round trip failed: {e}"))?;
            if reimported != circuit {
                return Err("qasm round trip changed the circuit".to_string());
            }
            return Ok(reimported);
        }
        Ok(circuit)
    }

    /// A copy restricted to the first `len` gates.
    #[must_use]
    pub fn truncated(&self, len: usize) -> Self {
        CorpusInstance {
            ops: self.ops[..len.min(self.ops.len())].to_vec(),
            ..self.clone()
        }
    }

    /// The concrete architecture of the case.
    #[must_use]
    pub fn architecture(&self) -> Architecture {
        self.arch
            .architecture_for(self.num_qubits)
            .with_num_aods(self.num_aods)
    }

    /// Lints the case: builds the circuit and runs [`lint_circuit`] on the
    /// case's architecture. A circuit-construction failure (QASM round
    /// trip) is reported as a `schedule-validate` violation.
    #[must_use]
    pub fn lint(&self) -> Vec<LintViolation> {
        match self.circuit() {
            Ok(circuit) => lint_circuit(&circuit, &self.architecture()),
            Err(message) => vec![LintViolation::new(LintRule::ScheduleValidate, "-", message)],
        }
    }
}

/// Shrinks a failing instance by halving its gate list while `fails` still
/// reports violations, returning the minimal reproducer and its
/// violations. Deterministic: the same instance and predicate always
/// shrink to the same bytes.
pub fn shrink_instance<F>(
    instance: &CorpusInstance,
    fails: F,
) -> (CorpusInstance, Vec<LintViolation>)
where
    F: Fn(&CorpusInstance) -> Vec<LintViolation>,
{
    let mut smallest = instance.clone();
    let mut violations = fails(instance);
    let mut len = smallest.ops.len();
    while len > 1 {
        len /= 2;
        let candidate = smallest.truncated(len);
        let candidate_violations = fails(&candidate);
        if candidate_violations.is_empty() {
            break;
        }
        smallest = candidate;
        violations = candidate_violations;
    }
    (smallest, violations)
}

// ---------------------------------------------------------------------------
// Reproducer persistence.
// ---------------------------------------------------------------------------

/// The config half of a checked-in reproducer: everything
/// `tests/lint_reproducers.rs` needs to replay the case, next to the QASM
/// file named in `qasm`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ReproducerConfig {
    /// Generator seed of the originating campaign case.
    pub seed: u64,
    /// Name of the first rule that fired ([`LintRule::name`]).
    pub rule: String,
    /// Routing strategy of the first violation.
    pub strategy: String,
    /// AOD-array count of the case.
    pub num_aods: usize,
    /// Architecture-variant name ([`ArchVariant::name`]).
    pub arch: String,
    /// The violation message at shrink time.
    pub message: String,
    /// Sibling QASM filename holding the shrunk circuit.
    pub qasm: String,
}

impl ReproducerConfig {
    /// Parses a config from its JSON text (the vendored `serde_json` has no
    /// derive-based deserialization, so fields are read off the [`Value`]
    /// tree by hand).
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or mistyped field.
    pub fn parse(text: &str) -> Result<Self, String> {
        let value: Value = serde_json::from_str(text).map_err(|e| format!("bad JSON: {e}"))?;
        let str_field = |key: &str| -> Result<String, String> {
            value
                .get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field {key:?}"))
        };
        let int_field = |key: &str| -> Result<i64, String> {
            value
                .get(key)
                .and_then(Value::as_i64)
                .ok_or_else(|| format!("missing integer field {key:?}"))
        };
        Ok(ReproducerConfig {
            seed: int_field("seed")? as u64,
            rule: str_field("rule")?,
            strategy: str_field("strategy")?,
            num_aods: int_field("num_aods")? as usize,
            arch: str_field("arch")?,
            message: str_field("message")?,
            qasm: str_field("qasm")?,
        })
    }
}

/// A campaign failure: the shrunk case plus its violations.
#[derive(Debug, Clone)]
pub struct CampaignFailure {
    /// The shrunk (minimal) instance.
    pub instance: CorpusInstance,
    /// The violations the shrunk instance still triggers.
    pub violations: Vec<LintViolation>,
}

impl CampaignFailure {
    /// The reproducer's filename stem: `seed<seed>-<rule>`.
    #[must_use]
    pub fn stem(&self) -> String {
        format!("seed{}-{}", self.instance.seed, self.violations[0].rule)
    }

    /// Writes the `<stem>.qasm` + `<stem>.json` reproducer pair into
    /// `dir`, returning the stem. Output is byte-deterministic (no
    /// timestamps, sorted keys via the struct field order).
    ///
    /// # Errors
    ///
    /// Returns the I/O error message if either file cannot be written.
    pub fn persist(&self, dir: &Path) -> Result<String, String> {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        let stem = self.stem();
        let circuit = self
            .instance
            .circuit()
            // A QASM-round-trip failure has no importable circuit; persist
            // the generator's direct construction instead.
            .unwrap_or_else(|_| {
                let direct = CorpusInstance {
                    via_qasm: false,
                    ..self.instance.clone()
                };
                direct.circuit().expect("direct construction cannot fail")
            });
        let qasm_name = format!("{stem}.qasm");
        let first = &self.violations[0];
        let config = ReproducerConfig {
            seed: self.instance.seed,
            rule: first.rule.name().to_string(),
            strategy: first.strategy.clone(),
            num_aods: self.instance.num_aods,
            arch: self.instance.arch.name().to_string(),
            message: first.message.clone(),
            qasm: qasm_name.clone(),
        };
        let qasm_path = dir.join(&qasm_name);
        std::fs::write(&qasm_path, qasm::to_qasm(&circuit))
            .map_err(|e| format!("write {}: {e}", qasm_path.display()))?;
        let json_path = dir.join(format!("{stem}.json"));
        let json = serde_json::to_string_pretty(&config).expect("reproducer config serialization");
        std::fs::write(&json_path, format!("{json}\n"))
            .map_err(|e| format!("write {}: {e}", json_path.display()))?;
        Ok(stem)
    }
}

/// Replays a checked-in reproducer: reads the config's QASM sibling,
/// rebuilds the architecture and lints the circuit.
///
/// # Errors
///
/// Returns an error message if the pair cannot be read or parsed.
pub fn replay_reproducer(config_path: &Path) -> Result<Vec<LintViolation>, String> {
    let text = std::fs::read_to_string(config_path)
        .map_err(|e| format!("read {}: {e}", config_path.display()))?;
    let config = ReproducerConfig::parse(&text)
        .map_err(|e| format!("parse {}: {e}", config_path.display()))?;
    let dir = config_path.parent().unwrap_or_else(|| Path::new("."));
    let qasm_path = dir.join(&config.qasm);
    let qasm_text = std::fs::read_to_string(&qasm_path)
        .map_err(|e| format!("read {}: {e}", qasm_path.display()))?;
    let circuit =
        qasm::from_qasm(&qasm_text).map_err(|e| format!("{}: {e}", qasm_path.display()))?;
    let variant = ArchVariant::from_name(&config.arch)
        .ok_or_else(|| format!("unknown architecture variant {:?}", config.arch))?;
    let arch = variant
        .architecture_for(circuit.num_qubits())
        .with_num_aods(config.num_aods);
    Ok(lint_circuit(&circuit, &arch))
}

// ---------------------------------------------------------------------------
// The campaign runner.
// ---------------------------------------------------------------------------

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of corpus cases to lint.
    pub cases: u64,
    /// First seed; cases run over `base_seed..base_seed + cases`.
    pub base_seed: u64,
    /// Directory reproducers are persisted into (`None` = don't persist).
    pub out_dir: Option<PathBuf>,
}

/// The campaign's summary, checked in when a run is clean
/// (`bench/reproducers/campaign-summary.json`). Byte-deterministic: no
/// timestamps, failures sorted by seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSummary {
    /// Number of corpus cases linted.
    pub cases: u64,
    /// First seed of the sweep.
    pub base_seed: u64,
    /// Total violations across all failing cases (post-shrink).
    pub violations: u64,
    /// Reproducer stems, sorted by seed (empty on a clean run).
    pub reproducers: Vec<String>,
    /// Whether the campaign found nothing.
    pub clean: bool,
}

/// Runs the corpus campaign: lints `config.cases` seeded cases fanned out
/// over the `POWERMOVE_THREADS` pool, shrinks every failure by halving and
/// (when `out_dir` is set) persists reproducer pairs. Returns the summary
/// plus the shrunk failures in seed order.
///
/// # Panics
///
/// Panics if a reproducer cannot be written — a campaign that cannot
/// persist its evidence should fail loudly.
#[must_use]
pub fn run_campaign(config: &CampaignConfig) -> (CampaignSummary, Vec<CampaignFailure>) {
    let seeds: Vec<u64> = (config.base_seed..config.base_seed + config.cases).collect();
    let failures: Vec<Option<CampaignFailure>> = ThreadPool::from_env().par_map(seeds, |seed| {
        let instance = CorpusInstance::generate(seed);
        let violations = instance.lint();
        if violations.is_empty() {
            return None;
        }
        let (shrunk, violations) = shrink_instance(&instance, CorpusInstance::lint);
        Some(CampaignFailure {
            instance: shrunk,
            violations,
        })
    });
    let failures: Vec<CampaignFailure> = failures.into_iter().flatten().collect();
    let mut reproducers = Vec::new();
    for failure in &failures {
        match &config.out_dir {
            Some(dir) => reproducers.push(
                failure
                    .persist(dir)
                    .unwrap_or_else(|e| panic!("cannot persist reproducer: {e}")),
            ),
            None => reproducers.push(failure.stem()),
        }
    }
    let summary = CampaignSummary {
        cases: config.cases,
        base_seed: config.base_seed,
        violations: failures.iter().map(|f| f.violations.len() as u64).sum(),
        reproducers,
        clean: failures.is_empty(),
    };
    (summary, failures)
}

// ---------------------------------------------------------------------------
// Service JSONL replay.
// ---------------------------------------------------------------------------

/// Outcome of linting a service JSONL log.
#[derive(Debug, Clone, Default)]
pub struct JsonlReport {
    /// Total lines scanned.
    pub lines: usize,
    /// Compile frames successfully parsed and linted.
    pub linted: usize,
    /// Lines skipped (blank, non-compile frames, unparseable frames).
    pub skipped: usize,
    /// Violations, labelled with the 1-based line number of the frame.
    pub violations: Vec<(usize, LintViolation)>,
}

/// Lints every compile frame of a service JSONL log (the request stream
/// `powermove-serve` consumes): each frame's circuit is replayed through
/// [`lint_circuit`] on the paper's default architecture at the frame's AOD
/// count. Non-compile and unparseable lines are skipped, not errors — logs
/// interleave stats/shutdown frames and partial writes.
#[must_use]
pub fn lint_service_log(text: &str) -> JsonlReport {
    use powermove_service::protocol::Request;
    let mut report = JsonlReport::default();
    for (index, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        report.lines += 1;
        let request = match Request::parse(line) {
            Ok(Request::Compile(request)) => request,
            Ok(_) | Err(_) => {
                report.skipped += 1;
                continue;
            }
        };
        let circuit = match request.circuit() {
            Ok(circuit) => circuit,
            Err(_) => {
                // The importer rejecting a malformed frame is the hardened
                // behaviour, not a schedule bug.
                report.skipped += 1;
                continue;
            }
        };
        let arch = Architecture::for_qubits(circuit.num_qubits()).with_num_aods(request.aods);
        for violation in lint_circuit(&circuit, &arch) {
            report.violations.push((index + 1, violation));
        }
        report.linted += 1;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermove_circuit::CzGate;
    use powermove_hardware::AodId;
    use powermove_schedule::{CollMove, Layout, SiteMove};

    fn arch(aods: usize) -> Architecture {
        Architecture::for_qubits(4).with_num_aods(aods)
    }

    fn site(a: &Architecture, zone: Zone, col: u32, row: u32) -> SiteId {
        a.grid().site(zone, col, row).expect("site exists")
    }

    fn storage_layout(a: &Architecture, n: u32) -> Layout {
        Layout::row_major(a, n, Zone::Storage).expect("storage holds the qubits")
    }

    /// A valid do-nothing program: every rule must stay quiet on it.
    fn empty_program(a: &Architecture) -> CompiledProgram {
        CompiledProgram::new(a.clone(), 2, storage_layout(a, 2), vec![])
    }

    /// A valid program whose single move group hauls qubit 0 from storage
    /// to the computation zone.
    fn one_move_program(a: &Architecture) -> CompiledProgram {
        let from = site(a, Zone::Storage, 0, 0);
        let to = site(a, Zone::Compute, 0, 0);
        CompiledProgram::new(
            a.clone(),
            2,
            storage_layout(a, 2),
            vec![Instruction::move_group(vec![CollMove::new(
                AodId::new(0),
                vec![SiteMove::new(Qubit::new(0), from, to)],
            )])],
        )
    }

    /// A program whose move group double-books AOD 0 with two collective
    /// moves — the hand-built violation behind both the `aod-batches` and
    /// the `intra-aod-overlap` firing tests.
    fn double_booked_program(a: &Architecture) -> CompiledProgram {
        let moves = |q: u32, col: u32| {
            vec![SiteMove::new(
                Qubit::new(q),
                site(a, Zone::Storage, col, 0),
                site(a, Zone::Compute, col, 0),
            )]
        };
        CompiledProgram::new(
            a.clone(),
            2,
            storage_layout(a, 2),
            vec![Instruction::move_group(vec![
                CollMove::new(AodId::new(0), moves(0, 0)),
                CollMove::new(AodId::new(0), moves(1, 1)),
            ])],
        )
    }

    #[test]
    fn compiled_circuits_are_clean_under_every_rule() {
        let mut circuit = Circuit::new(4);
        circuit.h(Qubit::new(0)).unwrap();
        circuit.cz(Qubit::new(0), Qubit::new(1)).unwrap();
        circuit.cz(Qubit::new(2), Qubit::new(3)).unwrap();
        for variant in ArchVariant::ALL {
            let a = variant.architecture_for(4).with_num_aods(2);
            assert_eq!(lint_circuit(&circuit, &a), vec![], "{}", variant.name());
        }
    }

    #[test]
    fn schedule_validate_fires_on_a_non_colocated_rydberg_stage() {
        let a = arch(1);
        let layout = Layout::row_major(&a, 2, Zone::Compute).unwrap();
        let bad = CompiledProgram::new(
            a.clone(),
            2,
            layout,
            vec![Instruction::rydberg(vec![CzGate::new(
                Qubit::new(0),
                Qubit::new(1),
            )])],
        );
        assert!(check_schedule(&bad, None).is_err());
        let violations = lint_program(&bad, None, "greedy");
        assert!(violations
            .iter()
            .any(|v| v.rule == LintRule::ScheduleValidate && v.strategy == "greedy"));
        // Quiet on a valid program.
        assert!(check_schedule(&empty_program(&a), None).is_ok());
    }

    #[test]
    fn schedule_validate_fires_on_a_cz_count_mismatch() {
        let a = arch(1);
        let program = empty_program(&a);
        assert!(check_schedule(&program, Some(0)).is_ok());
        let err = check_schedule(&program, Some(3)).unwrap_err();
        assert!(err.contains("circuit has 3"), "{err}");
    }

    #[test]
    fn aod_batches_fires_on_a_double_booked_aod() {
        let a = arch(2);
        let err = check_aod_batches(&double_booked_program(&a)).unwrap_err();
        assert!(err.contains("invalid AOD batches"), "{err}");
        // Quiet when the two windows use distinct AODs.
        let moves = |q: u32, col: u32| {
            vec![SiteMove::new(
                Qubit::new(q),
                site(&a, Zone::Storage, col, 0),
                site(&a, Zone::Compute, col, 0),
            )]
        };
        let ok = CompiledProgram::new(
            a.clone(),
            2,
            storage_layout(&a, 2),
            vec![Instruction::move_group(vec![
                CollMove::new(AodId::new(0), moves(0, 0)),
                CollMove::new(AodId::new(1), moves(1, 1)),
            ])],
        );
        assert!(check_aod_batches(&ok).is_ok());
        assert!(check_intra_aod_overlap(&ok).is_ok());
    }

    #[test]
    fn intra_aod_overlap_fires_on_parallel_windows_of_one_aod() {
        let a = arch(2);
        let err = check_intra_aod_overlap(&double_booked_program(&a)).unwrap_err();
        assert!(err.contains("double-booked"), "{err}");
        let violations = lint_program(&double_booked_program(&a), None, "multi-aod");
        assert!(violations
            .iter()
            .any(|v| v.rule == LintRule::IntraAodOverlap));
    }

    #[test]
    fn storage_before_interaction_fires_on_a_late_storage_window() {
        let a = arch(2);
        let compute_bound = Instruction::move_group(vec![CollMove::new(
            AodId::new(0),
            vec![SiteMove::new(
                Qubit::new(0),
                site(&a, Zone::Storage, 0, 0),
                site(&a, Zone::Compute, 0, 0),
            )],
        )]);
        let storage_bound = Instruction::move_group(vec![CollMove::new(
            AodId::new(1),
            vec![SiteMove::new(
                Qubit::new(1),
                site(&a, Zone::Storage, 1, 0),
                site(&a, Zone::Storage, 1, 1),
            )],
        )]);
        let layout = storage_layout(&a, 2);
        let bad = CompiledProgram::new(
            a.clone(),
            2,
            layout.clone(),
            vec![compute_bound.clone(), storage_bound.clone()],
        );
        let err = check_storage_before_interaction(&bad).unwrap_err();
        assert!(err.contains("storage-bound window"), "{err}");
        // Quiet when the storage-bound window comes first (move-in-first)…
        let ok = CompiledProgram::new(
            a.clone(),
            2,
            layout.clone(),
            vec![storage_bound.clone(), compute_bound.clone()],
        );
        assert!(check_storage_before_interaction(&ok).is_ok());
        // …or when a Rydberg stage separates the transition.
        let staged = CompiledProgram::new(
            a.clone(),
            2,
            layout,
            vec![compute_bound, Instruction::rydberg(vec![]), storage_bound],
        );
        assert!(check_storage_before_interaction(&staged).is_ok());
    }

    #[test]
    fn fidelity_dominance_fires_when_auto_moves_more_than_a_member() {
        let a = arch(1);
        let auto = one_move_program(&a);
        let member = empty_program(&a);
        let err = check_fidelity_dominance(&auto, &[("greedy", &member)]).unwrap_err();
        assert!(err.contains("worse than member greedy"), "{err}");
        // Quiet when auto replays the member byte-identically.
        assert!(check_fidelity_dominance(&member, &[("greedy", &member)]).is_ok());
        // And with no members there is nothing to dominate.
        assert!(check_fidelity_dominance(&auto, &[]).is_ok());
    }

    #[test]
    fn free_site_agreement_fires_under_an_inadmissible_bias() {
        let a = arch(1);
        let grid = a.grid().clone();
        let compute: Vec<SiteId> = grid.sites_in(Zone::Compute).collect();
        let far = *compute.last().unwrap();
        let anchor = grid.position(compute[0]);
        let mut harness = FreeSiteHarness::new(a.clone(), 4);
        // An inadmissible claim: bias can reach -1000 but min_bias says 0,
        // so the pruned search cuts off before examining the far site.
        let trap = move |s: SiteId, _: Point| if s == far { -1000.0 } else { 0.0 };
        let err = check_free_site_agreement_with(&mut harness, &[anchor], 0.0, &trap).unwrap_err();
        assert!(err.contains("pruned search found"), "{err}");
        // Quiet under an honest zero bias.
        let mut harness = FreeSiteHarness::new(a, 4);
        assert!(check_free_site_agreement_with(&mut harness, &[anchor], 0.0, &|_, _| 0.0).is_ok());
    }

    #[test]
    fn free_site_agreement_is_quiet_on_compiled_programs() {
        let a = arch(2);
        let program = one_move_program(&a);
        assert!(check_free_site_agreement(&program).is_ok());
    }

    #[test]
    fn corpus_generator_is_deterministic_and_covers_the_cell_grid() {
        let a = CorpusInstance::generate(17);
        let b = CorpusInstance::generate(17);
        assert_eq!(a, b);
        assert!((4..=10).contains(&a.num_qubits));
        assert!(!a.ops.is_empty());
        // The seed-derived cell cycles AODs 1-4 and all four variants.
        let mut aods = std::collections::BTreeSet::new();
        let mut variants = std::collections::BTreeSet::new();
        for seed in 0..16 {
            let i = CorpusInstance::generate(seed);
            aods.insert(i.num_aods);
            variants.insert(i.arch.name());
        }
        assert_eq!(aods.into_iter().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        assert_eq!(variants.len(), 4);
        // Every 16th seed goes through the QASM importer.
        assert!(CorpusInstance::generate(16).via_qasm);
        assert!(!CorpusInstance::generate(17).via_qasm);
        assert_eq!(
            CorpusInstance::generate(16).circuit().unwrap().num_gates(),
            CorpusInstance::generate(16).ops.len()
        );
    }

    #[test]
    fn shrinking_is_deterministic_and_reproducers_are_byte_identical() {
        let instance = CorpusInstance::generate(42);
        assert!(instance.ops.len() > 2);
        let synthetic = |i: &CorpusInstance| {
            if i.ops.is_empty() {
                vec![]
            } else {
                vec![LintViolation {
                    rule: LintRule::AodBatches,
                    strategy: "greedy".to_string(),
                    message: format!("synthetic failure at {} gates", i.ops.len()),
                }]
            }
        };
        let (first, v1) = shrink_instance(&instance, synthetic);
        let (second, v2) = shrink_instance(&instance, synthetic);
        assert_eq!(first, second);
        assert_eq!(v1, v2);
        assert_eq!(first.ops.len(), 1, "halving walks down to one gate");

        // Persisting the same failure twice produces identical bytes.
        let dir_a = std::env::temp_dir().join(format!("pm-lint-a-{}", std::process::id()));
        let dir_b = std::env::temp_dir().join(format!("pm-lint-b-{}", std::process::id()));
        let failure = CampaignFailure {
            instance: first,
            violations: v1,
        };
        let stem_a = failure.persist(&dir_a).unwrap();
        let stem_b = failure.persist(&dir_b).unwrap();
        assert_eq!(stem_a, stem_b);
        assert_eq!(stem_a, "seed42-aod-batches");
        for ext in ["qasm", "json"] {
            let a = std::fs::read(dir_a.join(format!("{stem_a}.{ext}"))).unwrap();
            let b = std::fs::read(dir_b.join(format!("{stem_b}.{ext}"))).unwrap();
            assert_eq!(a, b, "{ext} bytes differ");
        }
        // The persisted pair replays through the real linter (and this
        // synthetic case is genuinely clean under it).
        let replayed = replay_reproducer(&dir_a.join(format!("{stem_a}.json"))).unwrap();
        assert_eq!(replayed, vec![]);
        for dir in [dir_a, dir_b] {
            std::fs::remove_dir_all(dir).ok();
        }
    }

    #[test]
    fn small_campaigns_are_deterministic() {
        let config = CampaignConfig {
            cases: 6,
            base_seed: 100,
            out_dir: None,
        };
        let (first, _) = run_campaign(&config);
        let (second, _) = run_campaign(&config);
        assert_eq!(first, second);
        assert_eq!(first.cases, 6);
        assert!(first.clean, "seeds 100-105 lint clean");
    }

    #[test]
    fn service_logs_lint_compile_frames_and_skip_the_rest() {
        let log = concat!(
            r#"{"id": 1, "op": "compile", "benchmark": {"family": "BV", "qubits": 6}, "aods": 2}"#,
            "\n",
            r#"{"id": 2, "op": "stats"}"#,
            "\n",
            "not json at all\n",
            "\n",
            r#"{"id": 3, "qasm": "OPENQASM 2.0;\nqreg q[3];\nh q[0];\ncz q[0], q[1];\n"}"#,
            "\n",
            r#"{"id": 4, "qasm": "OPENQASM 2.0;\nqreg q[2];\nccx q[0];\n"}"#,
            "\n",
        );
        let report = lint_service_log(log);
        assert_eq!(report.lines, 5, "blank line is not counted");
        assert_eq!(report.linted, 2, "benchmark + inline qasm frames");
        assert_eq!(report.skipped, 3, "stats frame, garbage, rejected qasm");
        assert_eq!(report.violations, vec![]);
    }

    #[test]
    fn lint_rule_names_round_trip() {
        for rule in LintRule::ALL {
            assert_eq!(LintRule::from_name(rule.name()), Some(rule));
            assert_eq!(rule.to_string(), rule.name());
        }
        assert_eq!(LintRule::from_name("nonsense"), None);
    }
}
