//! Repeat-run sample statistics for wall-clock metrics.
//!
//! Exact metrics (stages, transfers, CZ counts) and deterministic model
//! outputs (fidelity, execution time) are single-run: re-running the
//! compiler cannot change them. Wall clocks are different — a single
//! compile-time sample on a shared CI runner is dominated by scheduler
//! noise, which is why the gate historically needed a 4× slack to avoid
//! flakes. [`SampleStats`] replaces the single sample with a small set of
//! repeat-run samples (`--repeats N`, default [`DEFAULT_REPEATS`]) and
//! summarizes them as a **median** plus a simple **confidence interval**
//! (the notched-box-plot heuristic: `median ± 1.58 · IQR / √n`, clamped to
//! the observed range), so the gate can compare the current median against
//! the baseline's interval instead of multiplying by a generous constant.

use serde::{Serialize, Value};

/// Default number of repeat runs used to sample wall-clock metrics.
pub const DEFAULT_REPEATS: usize = 3;

/// The notched-box-plot confidence-interval factor: the interval half-width
/// is `1.58 · IQR / √n`, the classic approximation of a 95 % interval for
/// the median (McGill, Tukey & Larsen 1978).
pub const CI_FACTOR: f64 = 1.58;

/// A non-empty set of repeat-run samples of one wall-clock metric, with
/// median and confidence-interval summaries.
///
/// Samples are kept in collection order; all summaries are computed on a
/// sorted copy, so two `SampleStats` holding the same multiset of samples
/// summarize identically.
///
/// # Example
///
/// ```
/// use powermove_bench::stats::SampleStats;
///
/// let stats = SampleStats::from_samples(vec![3.0, 1.0, 2.0]);
/// assert_eq!(stats.median(), 2.0);
/// let (lo, hi) = stats.ci();
/// assert!(lo >= 1.0 && hi <= 3.0 && lo <= 2.0 && 2.0 <= hi);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SampleStats {
    samples: Vec<f64>,
}

impl SampleStats {
    /// Wraps a single measurement (an interval of zero width).
    #[must_use]
    pub fn single(value: f64) -> Self {
        SampleStats {
            samples: vec![value],
        }
    }

    /// Wraps a set of repeat-run measurements.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty: a metric with no measurement has no
    /// statistics, and the harness always records at least one run.
    #[must_use]
    pub fn from_samples(samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "sample statistics need >= 1 sample");
        SampleStats { samples }
    }

    /// The raw samples, in collection order.
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether there is exactly one sample (never zero).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The smallest sample.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// The largest sample.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The sample median (mean of the two central samples for even counts).
    #[must_use]
    pub fn median(&self) -> f64 {
        let sorted = self.sorted();
        median_of(&sorted)
    }

    /// Lower and upper quartiles as Tukey hinges: the medians of the lower
    /// and upper halves, each half including the central sample when the
    /// count is odd.
    #[must_use]
    pub fn quartiles(&self) -> (f64, f64) {
        let sorted = self.sorted();
        let n = sorted.len();
        let lower = &sorted[..n.div_ceil(2)];
        let upper = &sorted[n / 2..];
        (median_of(lower), median_of(upper))
    }

    /// A simple confidence interval for the median: the notched-box-plot
    /// heuristic `median ± `[`CI_FACTOR`]` · IQR / √n`, clamped to the
    /// observed `[min, max]` range. A single sample yields the degenerate
    /// interval `[value, value]`.
    #[must_use]
    pub fn ci(&self) -> (f64, f64) {
        let median = self.median();
        let (q1, q3) = self.quartiles();
        let half_width = CI_FACTOR * (q3 - q1) / (self.len() as f64).sqrt();
        (
            (median - half_width).max(self.min()),
            (median + half_width).min(self.max()),
        )
    }

    /// Reads a `SampleStats` back from its serialized [`Value`] form (the
    /// `{"samples": [...], ...}` object): only the `samples` array is
    /// authoritative — the summary fields are recomputed, so a hand-edited
    /// median cannot drift from its samples.
    ///
    /// # Errors
    ///
    /// Returns a message describing the malformed field.
    pub fn from_value(value: &Value) -> Result<Self, String> {
        let samples = value
            .get("samples")
            .and_then(Value::as_array)
            .ok_or_else(|| "missing `samples` array".to_string())?;
        let samples = samples
            .iter()
            .enumerate()
            .map(|(i, s)| {
                s.as_f64()
                    .ok_or_else(|| format!("`samples[{i}]` is not a number"))
            })
            .collect::<Result<Vec<f64>, String>>()?;
        if samples.is_empty() {
            return Err("`samples` array is empty".to_string());
        }
        Ok(SampleStats { samples })
    }

    fn sorted(&self) -> Vec<f64> {
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        sorted
    }
}

impl Serialize for SampleStats {
    /// Serializes as an object carrying the raw samples plus the derived
    /// summaries (median and interval bounds) for human readers; parsing
    /// only trusts `samples` (see [`SampleStats::from_value`]).
    fn serialize(&self) -> Value {
        let (ci_low, ci_high) = self.ci();
        Value::Object(vec![
            ("samples".to_string(), self.samples.serialize()),
            ("median".to_string(), Value::Float(self.median())),
            ("ci_low".to_string(), Value::Float(ci_low)),
            ("ci_high".to_string(), Value::Float(ci_high)),
        ])
    }
}

fn median_of(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_on_known_samples() {
        assert_eq!(SampleStats::single(4.5).median(), 4.5);
        assert_eq!(SampleStats::from_samples(vec![3.0, 1.0, 2.0]).median(), 2.0);
        assert_eq!(
            SampleStats::from_samples(vec![4.0, 1.0, 3.0, 2.0]).median(),
            2.5
        );
        assert_eq!(
            SampleStats::from_samples(vec![5.0, 1.0, 4.0, 2.0, 3.0]).median(),
            3.0
        );
    }

    #[test]
    fn quartiles_are_tukey_hinges() {
        // Odd count: both halves include the central sample.
        let odd = SampleStats::from_samples(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(odd.quartiles(), (2.0, 4.0));
        // Even count: clean halves.
        let even = SampleStats::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(even.quartiles(), (1.5, 3.5));
        // Three samples: hinges straddle the median.
        let three = SampleStats::from_samples(vec![1.0, 2.0, 9.0]);
        assert_eq!(three.quartiles(), (1.5, 5.5));
    }

    #[test]
    fn ci_matches_the_notch_formula_on_known_samples() {
        let stats = SampleStats::from_samples(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let half = CI_FACTOR * 2.0 / 5.0_f64.sqrt();
        let (lo, hi) = stats.ci();
        assert_eq!(lo, 3.0 - half);
        assert_eq!(hi, 3.0 + half);
    }

    #[test]
    fn ci_is_clamped_to_the_observed_range() {
        // A wildly skewed triple would put the notch outside [min, max].
        let stats = SampleStats::from_samples(vec![1.0, 1.1, 100.0]);
        let (lo, hi) = stats.ci();
        assert!(lo >= 1.0, "lo {lo}");
        assert!(hi <= 100.0, "hi {hi}");
        assert!(lo <= stats.median() && stats.median() <= hi);
    }

    #[test]
    fn single_sample_interval_is_degenerate() {
        let stats = SampleStats::single(0.25);
        assert_eq!(stats.ci(), (0.25, 0.25));
        assert_eq!(stats.min(), 0.25);
        assert_eq!(stats.max(), 0.25);
        assert_eq!(stats.len(), 1);
        assert!(!stats.is_empty());
    }

    #[test]
    fn single_sample_quartiles_are_the_sample_not_nan() {
        // n = 1: both Tukey hinges are the lone sample — never NaN, and the
        // notch formula degenerates to zero width instead of dividing into
        // an empty half.
        let stats = SampleStats::single(4.0);
        let (q1, q3) = stats.quartiles();
        assert_eq!((q1, q3), (4.0, 4.0));
        assert!(!q1.is_nan() && !q3.is_nan());
        assert_eq!(stats.median(), 4.0);
    }

    #[test]
    fn two_samples_clamp_the_notch_to_the_observed_range() {
        // n = 2: IQR is the full range and the 1.58/sqrt(2) factor pushes
        // the raw notch outside [min, max]; the interval must clamp, not
        // extrapolate, and no summary may be NaN.
        let stats = SampleStats::from_samples(vec![3.0, 1.0]);
        assert_eq!(stats.median(), 2.0);
        let (q1, q3) = stats.quartiles();
        assert_eq!((q1, q3), (1.0, 3.0));
        assert!(!q1.is_nan() && !q3.is_nan());
        let raw_half = CI_FACTOR * (q3 - q1) / 2.0_f64.sqrt();
        assert!(raw_half > 1.0, "the raw notch would overflow the range");
        let (lo, hi) = stats.ci();
        assert_eq!((lo, hi), (1.0, 3.0));
        assert!(lo <= stats.median() && stats.median() <= hi);
        // Equal pair: zero-width interval, still no NaN anywhere.
        let flat = SampleStats::from_samples(vec![2.0, 2.0]);
        assert_eq!(flat.quartiles(), (2.0, 2.0));
        assert_eq!(flat.ci(), (2.0, 2.0));
    }

    #[test]
    fn identical_samples_have_zero_width() {
        let stats = SampleStats::from_samples(vec![2.0, 2.0, 2.0]);
        assert_eq!(stats.median(), 2.0);
        assert_eq!(stats.ci(), (2.0, 2.0));
    }

    #[test]
    fn serializes_with_summaries_and_round_trips_from_samples() {
        let stats = SampleStats::from_samples(vec![0.3, 0.1, 0.2]);
        let value = stats.serialize();
        assert_eq!(value.get("median").and_then(Value::as_f64), Some(0.2));
        assert!(value.get("ci_low").is_some() && value.get("ci_high").is_some());
        let parsed = SampleStats::from_value(&value).unwrap();
        assert_eq!(parsed, stats);
    }

    #[test]
    fn from_value_rejects_malformed_shapes() {
        assert!(SampleStats::from_value(&Value::Null).is_err());
        let empty = Value::Object(vec![("samples".into(), Value::Array(vec![]))]);
        assert!(SampleStats::from_value(&empty)
            .unwrap_err()
            .contains("empty"));
        let mistyped = Value::Object(vec![(
            "samples".into(),
            Value::Array(vec![Value::String("fast".into())]),
        )]);
        assert!(SampleStats::from_value(&mistyped)
            .unwrap_err()
            .contains("samples[0]"));
    }

    #[test]
    #[should_panic(expected = ">= 1 sample")]
    fn empty_sample_set_panics() {
        let _ = SampleStats::from_samples(Vec::new());
    }
}
