//! Quantum Fourier transform benchmark.

use powermove_circuit::{Circuit, Qubit};
use std::f64::consts::PI;

/// Builds the standard n-qubit quantum Fourier transform.
///
/// For each qubit `i` (most significant first) the circuit applies a
/// Hadamard followed by controlled-phase rotations `CP(π/2^(j−i))` from every
/// lower qubit `j > i`. Each controlled phase is lowered to one CZ plus local
/// Rz rotations, the convention the paper uses when counting two-qubit gates.
/// The final qubit-reversal swaps are omitted, as is conventional for
/// compiler benchmarks (they can be absorbed into qubit relabelling).
#[must_use]
pub fn qft(num_qubits: u32) -> Circuit {
    let mut c = Circuit::new(num_qubits);
    for i in 0..num_qubits {
        c.h(Qubit::new(i)).expect("qubit in range");
        for j in (i + 1)..num_qubits {
            let angle = PI / f64::from(1_u32 << (j - i).min(30));
            c.cphase(Qubit::new(j), Qubit::new(i), angle)
                .expect("qubits in range");
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermove_circuit::BlockProgram;

    #[test]
    fn qft_gate_counts() {
        let c = qft(5);
        // C(5,2) = 10 controlled phases, one CZ each.
        assert_eq!(c.cz_count(), 10);
        // 5 Hadamards + 2 Rz per controlled phase.
        assert_eq!(c.one_qubit_count(), 5 + 20);
    }

    #[test]
    fn qft_18_matches_table_2_size() {
        let c = qft(18);
        assert_eq!(c.num_qubits(), 18);
        assert_eq!(c.cz_count(), 18 * 17 / 2);
    }

    #[test]
    fn qft_produces_multiple_blocks() {
        // The interleaved Hadamards force one CZ block per qubit (except the
        // last), mirroring the deep sequential structure of QFT.
        let c = qft(6);
        let p = BlockProgram::from_circuit(&c);
        assert_eq!(p.cz_blocks().count(), 5);
    }

    #[test]
    fn qft_is_deterministic() {
        assert_eq!(qft(8), qft(8));
    }
}
