//! Random Pauli-string quantum-simulation benchmark (QSim).

use powermove_circuit::{Circuit, Qubit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a Trotterized random-Pauli-string simulation circuit.
///
/// The circuit exponentiates `num_strings` random Pauli strings; every qubit
/// participates in a given string with probability `density` (0.3 in the
/// paper, hence "QSIM-rand-0.3") with a uniformly random non-identity Pauli.
/// Each string is compiled in the standard way: basis-change rotations, a
/// CNOT ladder onto the last involved qubit, an Rz rotation, and the
/// un-computation of the ladder and basis changes.
///
/// Strings with fewer than two involved qubits contribute only single-qubit
/// rotations.
#[must_use]
pub fn qsim_random(num_qubits: u32, num_strings: u32, density: f64, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(num_qubits);
    for _ in 0..num_strings {
        // Choose the support and Pauli type of the string.
        let mut support: Vec<(u32, u8)> = Vec::new();
        for qubit in 0..num_qubits {
            if rng.gen_bool(density) {
                support.push((qubit, rng.gen_range(0..3))); // 0 = X, 1 = Y, 2 = Z
            }
        }
        if support.is_empty() {
            continue;
        }
        let angle = rng.gen_range(0.0..std::f64::consts::TAU);
        append_pauli_rotation(&mut c, &support, angle);
    }
    c
}

fn append_pauli_rotation(c: &mut Circuit, support: &[(u32, u8)], angle: f64) {
    // Basis changes into the Z basis.
    for &(q, pauli) in support {
        match pauli {
            0 => c.h(Qubit::new(q)).expect("in range"),
            1 => {
                c.rx(Qubit::new(q), std::f64::consts::FRAC_PI_2)
                    .expect("in range");
            }
            _ => {}
        }
    }
    if support.len() == 1 {
        c.rz(Qubit::new(support[0].0), angle).expect("in range");
    } else {
        // CNOT ladder onto the last involved qubit, Rz, then un-compute.
        for w in support.windows(2) {
            c.cnot(Qubit::new(w[0].0), Qubit::new(w[1].0))
                .expect("in range");
        }
        c.rz(Qubit::new(support[support.len() - 1].0), angle)
            .expect("in range");
        for w in support.windows(2).rev() {
            c.cnot(Qubit::new(w[0].0), Qubit::new(w[1].0))
                .expect("in range");
        }
    }
    // Undo basis changes.
    for &(q, pauli) in support {
        match pauli {
            0 => c.h(Qubit::new(q)).expect("in range"),
            1 => {
                c.rx(Qubit::new(q), -std::f64::consts::FRAC_PI_2)
                    .expect("in range");
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermove_circuit::BlockProgram;

    #[test]
    fn qsim_is_deterministic_per_seed() {
        assert_eq!(qsim_random(10, 10, 0.3, 7), qsim_random(10, 10, 0.3, 7));
        assert_ne!(qsim_random(10, 10, 0.3, 7), qsim_random(10, 10, 0.3, 8));
    }

    #[test]
    fn qsim_cz_count_scales_with_support() {
        // Each string with k >= 2 involved qubits contributes 2(k-1) CNOTs,
        // i.e. 2(k-1) CZ gates after lowering.
        let c = qsim_random(20, 10, 0.3, 3);
        assert!(c.cz_count() > 0);
        // Expected support per string ~6, so roughly 10 * 2 * 5 = 100 CZs;
        // allow a generous range.
        assert!(c.cz_count() > 30, "got {}", c.cz_count());
        assert!(c.cz_count() < 250, "got {}", c.cz_count());
    }

    #[test]
    fn qsim_produces_many_blocks() {
        let c = qsim_random(20, 10, 0.3, 3);
        let p = BlockProgram::from_circuit(&c);
        assert!(p.cz_blocks().count() >= 10);
    }

    #[test]
    fn zero_density_gives_no_gates() {
        let c = qsim_random(10, 10, 0.0, 1);
        assert_eq!(c.num_gates(), 0);
    }

    #[test]
    fn full_density_involves_every_qubit() {
        let c = qsim_random(6, 1, 1.0, 1);
        assert_eq!(c.cz_count(), 2 * 5);
    }
}
