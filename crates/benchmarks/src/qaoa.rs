//! QAOA benchmark circuits.

use crate::graphs::{random_edges, random_regular_graph};
use powermove_circuit::{Circuit, Qubit};

/// Builds a single-level (p = 1) QAOA circuit for MaxCut on a random
/// `degree`-regular graph: a Hadamard layer, one ZZ interaction per graph
/// edge (each lowered to one CZ plus local rotations) and an Rx mixer layer.
///
/// # Panics
///
/// Panics if no simple `degree`-regular graph exists on `num_qubits`
/// vertices (odd `n·d` or `degree >= num_qubits`).
#[must_use]
pub fn qaoa_regular(num_qubits: u32, degree: u32, seed: u64) -> Circuit {
    let edges = random_regular_graph(num_qubits, degree, seed);
    qaoa_from_edges(num_qubits, &edges)
}

/// Builds a single-level QAOA circuit whose cost Hamiltonian couples every
/// qubit pair independently with 50 % probability (the paper's
/// "QAOA-random" benchmark).
#[must_use]
pub fn qaoa_random(num_qubits: u32, seed: u64) -> Circuit {
    let edges = random_edges(num_qubits, 0.5, seed);
    qaoa_from_edges(num_qubits, &edges)
}

fn qaoa_from_edges(num_qubits: u32, edges: &[(u32, u32)]) -> Circuit {
    let mut c = Circuit::new(num_qubits);
    let gamma = 0.7;
    let beta = 0.3;
    for i in 0..num_qubits {
        c.h(Qubit::new(i)).expect("qubit in range");
    }
    for &(a, b) in edges {
        c.zz(Qubit::new(a), Qubit::new(b), gamma)
            .expect("edge endpoints in range");
    }
    for i in 0..num_qubits {
        c.rx(Qubit::new(i), 2.0 * beta).expect("qubit in range");
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermove_circuit::BlockProgram;

    #[test]
    fn regular3_has_expected_gate_counts() {
        let c = qaoa_regular(30, 3, 11);
        assert_eq!(c.num_qubits(), 30);
        assert_eq!(c.cz_count(), 45);
        // H layer + 2 Rz per edge + Rx layer.
        assert_eq!(c.one_qubit_count(), 30 + 2 * 45 + 30);
    }

    #[test]
    fn regular4_has_expected_gate_counts() {
        let c = qaoa_regular(40, 4, 2);
        assert_eq!(c.cz_count(), 80);
    }

    #[test]
    fn cost_layer_forms_one_cz_block() {
        let c = qaoa_regular(20, 3, 3);
        let p = BlockProgram::from_circuit(&c);
        assert_eq!(p.cz_blocks().count(), 1);
        assert_eq!(p.total_cz_gates(), 30);
    }

    #[test]
    fn random_qaoa_is_seed_deterministic() {
        let a = qaoa_random(20, 9);
        let b = qaoa_random(20, 9);
        assert_eq!(a, b);
        let c = qaoa_random(20, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn random_qaoa_density_near_half() {
        let c = qaoa_random(30, 4);
        let max_edges = 30 * 29 / 2;
        assert!(c.cz_count() > max_edges / 4);
        assert!(c.cz_count() < 3 * max_edges / 4);
    }
}
