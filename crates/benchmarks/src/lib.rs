//! Benchmark circuit generators from the PowerMove evaluation (Sec. 7.1).
//!
//! The paper evaluates on QAOA (3-regular, 4-regular and random graphs),
//! quantum simulation of random Pauli strings (QSim), the quantum Fourier
//! transform (QFT), Bernstein–Vazirani (BV) and a hardware-efficient VQE
//! ansatz. Every generator is deterministic given a seed, so experiments are
//! reproducible.
//!
//! [`table2_suite`] reproduces the exact benchmark instances of Table 2,
//! each paired with the hardware configuration the paper derives from the
//! qubit count (`ceil(sqrt(n))` grid, 15 µm spacing, 30 µm zone gap).
//!
//! # Example
//!
//! ```
//! use powermove_benchmarks::{generate, BenchmarkFamily};
//!
//! let instance = generate(BenchmarkFamily::QaoaRegular3, 30, 7);
//! assert_eq!(instance.num_qubits, 30);
//! // A 3-regular graph on 30 vertices has 45 edges, one CZ each.
//! assert_eq!(instance.circuit.cz_count(), 45);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod bv;
mod graphs;
mod qaoa;
mod qft;
mod qsim;
mod suite;
mod vqe;

pub use bv::bernstein_vazirani;
pub use graphs::{random_edges, random_regular_graph};
pub use qaoa::{qaoa_random, qaoa_regular};
pub use qft::qft;
pub use qsim::qsim_random;
pub use suite::{generate, table2_sizes, table2_suite, BenchmarkFamily, BenchmarkInstance};
pub use vqe::{vqe_ansatz, EntanglementPattern};
