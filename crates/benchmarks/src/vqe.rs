//! Variational-quantum-eigensolver ansatz benchmark.

use powermove_circuit::{Circuit, Qubit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Entanglement pattern of the hardware-efficient VQE ansatz.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EntanglementPattern {
    /// CZ between neighbouring qubits `(i, i+1)`.
    Linear,
    /// Linear plus the wrap-around pair `(n-1, 0)`.
    Circular,
    /// CZ between every qubit pair.
    Full,
}

use serde::{Deserialize, Serialize};

/// Builds a hardware-efficient VQE ansatz: per repetition, a layer of
/// parameterized Ry/Rz rotations on every qubit followed by an entangling
/// layer of CZ gates in the given pattern, plus a final rotation layer.
///
/// The paper's tables use one repetition with the [`EntanglementPattern::Linear`]
/// chain (see DESIGN.md for the rationale of this substitution: the reported
/// fidelities of Table 3 correspond to Θ(n) entangling gates per circuit, not
/// the Θ(n²) of an all-to-all pattern).
///
/// Rotation angles are drawn deterministically from `seed`.
#[must_use]
pub fn vqe_ansatz(
    num_qubits: u32,
    repetitions: u32,
    pattern: EntanglementPattern,
    seed: u64,
) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(num_qubits);
    let rotation_layer = |c: &mut Circuit, rng: &mut StdRng| {
        for i in 0..num_qubits {
            let theta = rng.gen_range(0.0..std::f64::consts::TAU);
            let phi = rng.gen_range(0.0..std::f64::consts::TAU);
            c.ry(Qubit::new(i), theta).expect("qubit in range");
            c.rz(Qubit::new(i), phi).expect("qubit in range");
        }
    };
    for _ in 0..repetitions {
        rotation_layer(&mut c, &mut rng);
        match pattern {
            EntanglementPattern::Linear => {
                for i in 0..num_qubits.saturating_sub(1) {
                    c.cz(Qubit::new(i), Qubit::new(i + 1)).expect("in range");
                }
            }
            EntanglementPattern::Circular => {
                for i in 0..num_qubits.saturating_sub(1) {
                    c.cz(Qubit::new(i), Qubit::new(i + 1)).expect("in range");
                }
                if num_qubits > 2 {
                    c.cz(Qubit::new(num_qubits - 1), Qubit::new(0))
                        .expect("in range");
                }
            }
            EntanglementPattern::Full => {
                for a in 0..num_qubits {
                    for b in (a + 1)..num_qubits {
                        c.cz(Qubit::new(a), Qubit::new(b)).expect("in range");
                    }
                }
            }
        }
    }
    rotation_layer(&mut c, &mut rng);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermove_circuit::BlockProgram;

    #[test]
    fn linear_ansatz_gate_counts() {
        let c = vqe_ansatz(30, 1, EntanglementPattern::Linear, 1);
        assert_eq!(c.cz_count(), 29);
        // Two rotation layers of 2 gates per qubit each.
        assert_eq!(c.one_qubit_count(), 2 * 2 * 30);
    }

    #[test]
    fn circular_adds_wraparound() {
        let c = vqe_ansatz(10, 1, EntanglementPattern::Circular, 1);
        assert_eq!(c.cz_count(), 10);
    }

    #[test]
    fn full_is_all_pairs() {
        let c = vqe_ansatz(6, 1, EntanglementPattern::Full, 1);
        assert_eq!(c.cz_count(), 15);
    }

    #[test]
    fn entangling_layer_is_one_block() {
        let c = vqe_ansatz(12, 1, EntanglementPattern::Linear, 2);
        let p = BlockProgram::from_circuit(&c);
        assert_eq!(p.cz_blocks().count(), 1);
    }

    #[test]
    fn repetitions_multiply_blocks() {
        let c = vqe_ansatz(8, 3, EntanglementPattern::Linear, 2);
        let p = BlockProgram::from_circuit(&c);
        assert_eq!(p.cz_blocks().count(), 3);
        assert_eq!(c.cz_count(), 3 * 7);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            vqe_ansatz(10, 1, EntanglementPattern::Linear, 4),
            vqe_ansatz(10, 1, EntanglementPattern::Linear, 4)
        );
    }
}
