//! The benchmark suite of Table 2.

use crate::{
    bernstein_vazirani, qaoa_random, qaoa_regular, qft, qsim_random, vqe_ansatz,
    EntanglementPattern,
};
use powermove_circuit::Circuit;
use powermove_hardware::Architecture;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The benchmark families evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BenchmarkFamily {
    /// QAOA on a random 3-regular graph.
    QaoaRegular3,
    /// QAOA on a random 4-regular graph.
    QaoaRegular4,
    /// QAOA with each pair coupled with 50 % probability.
    QaoaRandom,
    /// Quantum Fourier transform.
    Qft,
    /// Bernstein–Vazirani with a balanced secret string.
    Bv,
    /// Hardware-efficient VQE ansatz.
    Vqe,
    /// Random Pauli-string simulation at density 0.3 with ten strings.
    QsimRand,
}

impl BenchmarkFamily {
    /// All families, in the order of Table 2.
    pub const ALL: [BenchmarkFamily; 7] = [
        BenchmarkFamily::QaoaRegular3,
        BenchmarkFamily::QaoaRegular4,
        BenchmarkFamily::QaoaRandom,
        BenchmarkFamily::Qft,
        BenchmarkFamily::Bv,
        BenchmarkFamily::Vqe,
        BenchmarkFamily::QsimRand,
    ];

    /// Parses a family from its display name, case-insensitively.
    ///
    /// This is the inverse of the [`fmt::Display`] rendering and the form
    /// the compile service accepts in request frames:
    ///
    /// ```
    /// use powermove_benchmarks::BenchmarkFamily;
    /// assert_eq!(
    ///     BenchmarkFamily::from_name("qaoa-regular3"),
    ///     Some(BenchmarkFamily::QaoaRegular3)
    /// );
    /// assert_eq!(BenchmarkFamily::from_name("QFT"), Some(BenchmarkFamily::Qft));
    /// assert_eq!(BenchmarkFamily::from_name("nope"), None);
    /// ```
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL
            .into_iter()
            .find(|family| family.to_string().eq_ignore_ascii_case(name))
    }
}

impl fmt::Display for BenchmarkFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            BenchmarkFamily::QaoaRegular3 => "QAOA-regular3",
            BenchmarkFamily::QaoaRegular4 => "QAOA-regular4",
            BenchmarkFamily::QaoaRandom => "QAOA-random",
            BenchmarkFamily::Qft => "QFT",
            BenchmarkFamily::Bv => "BV",
            BenchmarkFamily::Vqe => "VQE",
            BenchmarkFamily::QsimRand => "QSIM-rand-0.3",
        };
        write!(f, "{name}")
    }
}

/// One benchmark instance: a named circuit plus the default hardware
/// configuration the paper derives from its qubit count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkInstance {
    /// The benchmark family.
    pub family: BenchmarkFamily,
    /// Circuit width.
    pub num_qubits: u32,
    /// Human-readable name, e.g. `"QAOA-regular3-30"`.
    pub name: String,
    /// The generated circuit.
    pub circuit: Circuit,
}

impl BenchmarkInstance {
    /// The default zoned architecture for this instance (single AOD).
    #[must_use]
    pub fn architecture(&self) -> Architecture {
        Architecture::for_qubits(self.num_qubits)
    }
}

/// Generates one benchmark instance.
///
/// # Panics
///
/// Panics if the family/size combination is infeasible (e.g. an odd number
/// of qubits for a 3-regular graph, or fewer than 2 qubits).
#[must_use]
pub fn generate(family: BenchmarkFamily, num_qubits: u32, seed: u64) -> BenchmarkInstance {
    let circuit = match family {
        BenchmarkFamily::QaoaRegular3 => qaoa_regular(num_qubits, 3, seed),
        BenchmarkFamily::QaoaRegular4 => qaoa_regular(num_qubits, 4, seed),
        BenchmarkFamily::QaoaRandom => qaoa_random(num_qubits, seed),
        BenchmarkFamily::Qft => qft(num_qubits),
        BenchmarkFamily::Bv => bernstein_vazirani(num_qubits, seed),
        BenchmarkFamily::Vqe => vqe_ansatz(num_qubits, 1, EntanglementPattern::Linear, seed),
        BenchmarkFamily::QsimRand => qsim_random(num_qubits, 10, 0.3, seed),
    };
    BenchmarkInstance {
        family,
        num_qubits,
        name: format!("{family}-{num_qubits}"),
        circuit,
    }
}

/// The `(family, qubit-count)` pairs of Table 2, in table order.
#[must_use]
pub fn table2_sizes() -> Vec<(BenchmarkFamily, u32)> {
    use BenchmarkFamily::*;
    vec![
        (QaoaRegular3, 30),
        (QaoaRegular3, 40),
        (QaoaRegular3, 50),
        (QaoaRegular3, 60),
        (QaoaRegular3, 80),
        (QaoaRegular3, 100),
        (QaoaRegular4, 30),
        (QaoaRegular4, 40),
        (QaoaRegular4, 50),
        (QaoaRegular4, 60),
        (QaoaRegular4, 80),
        (QaoaRandom, 20),
        (QaoaRandom, 30),
        (Qft, 18),
        (Qft, 29),
        (Bv, 14),
        (Bv, 50),
        (Bv, 70),
        (Vqe, 30),
        (Vqe, 50),
        (QsimRand, 10),
        (QsimRand, 20),
        (QsimRand, 40),
    ]
}

/// Generates every benchmark instance of Table 2 with the given seed.
#[must_use]
pub fn table2_suite(seed: u64) -> Vec<BenchmarkInstance> {
    table2_sizes()
        .into_iter()
        .map(|(family, n)| generate(family, n, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermove_hardware::Zone;

    #[test]
    fn table2_has_23_instances() {
        let suite = table2_suite(1);
        assert_eq!(suite.len(), 23);
        assert_eq!(table2_sizes().len(), 23);
    }

    #[test]
    fn instance_names_match_family_and_size() {
        let inst = generate(BenchmarkFamily::Bv, 14, 0);
        assert_eq!(inst.name, "BV-14");
        assert_eq!(inst.circuit.num_qubits(), 14);
    }

    #[test]
    fn architectures_match_table_2_zone_sizes() {
        // Spot-check a few rows of Table 2.
        let cases = [
            (30_u32, (90.0, 90.0), (90.0, 180.0)),
            (50, (120.0, 120.0), (120.0, 240.0)),
            (100, (150.0, 150.0), (150.0, 300.0)),
        ];
        for (n, compute, storage) in cases {
            let inst = generate(BenchmarkFamily::QaoaRegular3, n, 0);
            let arch = inst.architecture();
            assert_eq!(arch.grid().zone_size_um(Zone::Compute), compute);
            assert_eq!(arch.grid().zone_size_um(Zone::Storage), storage);
            assert_eq!(arch.grid().inter_zone_size_um().1, 30.0);
        }
    }

    #[test]
    fn every_family_generates_nonempty_circuits() {
        for family in BenchmarkFamily::ALL {
            let n = match family {
                BenchmarkFamily::Qft => 8,
                _ => 10,
            };
            let inst = generate(family, n, 3);
            assert!(inst.circuit.cz_count() > 0, "{family} has no CZ gates");
        }
    }

    #[test]
    fn suite_is_deterministic() {
        let a = table2_suite(5);
        let b = table2_suite(5);
        assert_eq!(a, b);
    }

    #[test]
    fn family_display_names() {
        assert_eq!(BenchmarkFamily::QsimRand.to_string(), "QSIM-rand-0.3");
        assert_eq!(BenchmarkFamily::QaoaRegular3.to_string(), "QAOA-regular3");
    }
}
