//! Bernstein–Vazirani benchmark.

use powermove_circuit::{Circuit, Qubit};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Builds a Bernstein–Vazirani circuit on `num_qubits` qubits (the last
/// qubit is the oracle ancilla).
///
/// The secret string has an even split of 0s and 1s (as specified in
/// Sec. 7.1), shuffled deterministically by `seed`. Each secret 1-bit
/// contributes a CNOT onto the ancilla, lowered to `H · CZ · H`; the
/// Hadamards on the shared ancilla serialize the CZ gates into separate
/// blocks, which is why BV exhibits many Rydberg stages with a single gate
/// each (Sec. 7.3).
///
/// # Panics
///
/// Panics if `num_qubits < 2`.
#[must_use]
pub fn bernstein_vazirani(num_qubits: u32, seed: u64) -> Circuit {
    assert!(
        num_qubits >= 2,
        "BV needs at least one data qubit and one ancilla"
    );
    let data = num_qubits - 1;
    let ancilla = Qubit::new(num_qubits - 1);

    let ones = (data / 2).max(1);
    let mut secret: Vec<bool> = (0..data).map(|i| i < ones).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    secret.shuffle(&mut rng);

    let mut c = Circuit::new(num_qubits);
    for i in 0..data {
        c.h(Qubit::new(i)).expect("qubit in range");
    }
    c.x(ancilla).expect("ancilla in range");
    c.h(ancilla).expect("ancilla in range");
    for (i, &bit) in secret.iter().enumerate() {
        if bit {
            c.cnot(Qubit::new(i as u32), ancilla)
                .expect("qubits in range");
        }
    }
    for i in 0..data {
        c.h(Qubit::new(i)).expect("qubit in range");
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermove_circuit::BlockProgram;

    #[test]
    fn bv_has_one_cz_per_secret_one() {
        let c = bernstein_vazirani(14, 5);
        // 13 data qubits -> 6 ones.
        assert_eq!(c.cz_count(), 6);
    }

    #[test]
    fn bv_blocks_are_serialized_by_ancilla_hadamards() {
        let c = bernstein_vazirani(14, 5);
        let p = BlockProgram::from_circuit(&c);
        assert_eq!(p.cz_blocks().count(), c.cz_count());
        assert!(p.cz_blocks().all(|b| b.len() == 1));
    }

    #[test]
    fn bv_is_deterministic_per_seed() {
        assert_eq!(bernstein_vazirani(50, 1), bernstein_vazirani(50, 1));
        assert_ne!(bernstein_vazirani(50, 1), bernstein_vazirani(50, 2));
    }

    #[test]
    fn bv_70_matches_table_2_size() {
        let c = bernstein_vazirani(70, 3);
        assert_eq!(c.num_qubits(), 70);
        assert_eq!(c.cz_count(), 34);
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn bv_rejects_single_qubit() {
        let _ = bernstein_vazirani(1, 0);
    }
}
