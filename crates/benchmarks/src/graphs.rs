//! Random graph generators used by the QAOA benchmarks.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Generates a random `d`-regular simple graph on `n` vertices using the
/// configuration (pairing) model with rejection of self-loops and parallel
/// edges.
///
/// Returns the edge list with `n * d / 2` edges.
///
/// # Panics
///
/// Panics if `n * d` is odd or if `d >= n` (no simple `d`-regular graph
/// exists in either case).
#[must_use]
pub fn random_regular_graph(n: u32, d: u32, seed: u64) -> Vec<(u32, u32)> {
    assert!(d < n, "degree {d} must be smaller than vertex count {n}");
    assert!(
        (n * d) % 2 == 0,
        "n*d must be even for a {d}-regular graph on {n} vertices"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    // Pairing model with full restarts on failure. The expected number of
    // restarts is O(e^(d^2/4)), tiny for d in {3, 4}.
    loop {
        let mut stubs: Vec<u32> = (0..n)
            .flat_map(|v| std::iter::repeat(v).take(d as usize))
            .collect();
        stubs.shuffle(&mut rng);
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity((n * d / 2) as usize);
        let mut seen = std::collections::HashSet::new();
        let mut ok = true;
        for pair in stubs.chunks(2) {
            let (a, b) = (pair[0], pair[1]);
            if a == b {
                ok = false;
                break;
            }
            let key = (a.min(b), a.max(b));
            if !seen.insert(key) {
                ok = false;
                break;
            }
            edges.push(key);
        }
        if ok {
            edges.sort_unstable();
            return edges;
        }
    }
}

/// Generates the edge set of an Erdős–Rényi graph `G(n, p)`: every unordered
/// pair is included independently with probability `p`.
#[must_use]
pub fn random_edges(n: u32, p: f64, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            if rng.gen_bool(p) {
                edges.push((a, b));
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn regular_graph_has_correct_degrees() {
        for (n, d) in [(10, 3), (12, 4), (30, 3), (20, 4)] {
            let edges = random_regular_graph(n, d, 42);
            assert_eq!(edges.len(), (n * d / 2) as usize);
            let mut deg: HashMap<u32, u32> = HashMap::new();
            for (a, b) in &edges {
                assert_ne!(a, b);
                *deg.entry(*a).or_default() += 1;
                *deg.entry(*b).or_default() += 1;
            }
            assert!(deg.values().all(|&v| v == d), "n={n} d={d}");
        }
    }

    #[test]
    fn regular_graph_has_no_parallel_edges() {
        let edges = random_regular_graph(30, 3, 1);
        let set: std::collections::HashSet<_> = edges.iter().collect();
        assert_eq!(set.len(), edges.len());
    }

    #[test]
    fn regular_graph_is_deterministic_per_seed() {
        assert_eq!(
            random_regular_graph(20, 3, 5),
            random_regular_graph(20, 3, 5)
        );
        assert_ne!(
            random_regular_graph(20, 3, 5),
            random_regular_graph(20, 3, 6)
        );
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_degree_sum_panics() {
        let _ = random_regular_graph(5, 3, 0);
    }

    #[test]
    fn random_edges_probability_extremes() {
        assert!(random_edges(10, 0.0, 1).is_empty());
        assert_eq!(random_edges(10, 1.0, 1).len(), 45);
    }

    #[test]
    fn random_edges_half_probability_is_plausible() {
        let edges = random_edges(30, 0.5, 3);
        let total = 30 * 29 / 2;
        assert!(edges.len() > total / 4 && edges.len() < 3 * total / 4);
    }
}
