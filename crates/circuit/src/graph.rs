//! Graph views of CZ blocks used by the scheduling algorithms.
//!
//! Two graphs are relevant:
//!
//! * the **interaction graph**: vertices are qubits, edges are CZ gates —
//!   used to reason about qubit connectivity and degree;
//! * the **gate conflict graph**: vertices are CZ gates, with an edge between
//!   two gates that share a qubit — stage partition is a vertex colouring of
//!   this graph (Algorithm 1 of the paper) and Enola's scheduler repeatedly
//!   extracts independent sets from it.

use crate::{CzBlock, CzGate, Qubit};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Qubit-level interaction graph of a CZ block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InteractionGraph {
    adjacency: BTreeMap<Qubit, BTreeSet<Qubit>>,
    num_edges: usize,
}

impl InteractionGraph {
    /// Builds the interaction graph of a CZ block.
    ///
    /// Parallel (repeated) CZ gates between the same pair contribute a single
    /// edge.
    #[must_use]
    pub fn from_block(block: &CzBlock) -> Self {
        let mut adjacency: BTreeMap<Qubit, BTreeSet<Qubit>> = BTreeMap::new();
        let mut edges = BTreeSet::new();
        for gate in block.gates() {
            adjacency.entry(gate.lo()).or_default().insert(gate.hi());
            adjacency.entry(gate.hi()).or_default().insert(gate.lo());
            edges.insert((gate.lo(), gate.hi()));
        }
        InteractionGraph {
            adjacency,
            num_edges: edges.len(),
        }
    }

    /// Number of vertices (qubits that appear in at least one gate).
    #[must_use]
    pub fn num_vertices(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of distinct edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree of a qubit (number of distinct interaction partners).
    #[must_use]
    pub fn degree(&self, q: Qubit) -> usize {
        self.adjacency.get(&q).map_or(0, BTreeSet::len)
    }

    /// Maximum degree over all qubits.
    #[must_use]
    pub fn max_degree(&self) -> usize {
        self.adjacency
            .values()
            .map(BTreeSet::len)
            .max()
            .unwrap_or(0)
    }

    /// The neighbours of a qubit.
    #[must_use]
    pub fn neighbors(&self, q: Qubit) -> Vec<Qubit> {
        self.adjacency
            .get(&q)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Iterates over the vertices of the graph.
    pub fn vertices(&self) -> impl Iterator<Item = Qubit> + '_ {
        self.adjacency.keys().copied()
    }
}

/// Gate-level conflict graph of a CZ block.
///
/// Vertex `i` corresponds to `block.gates()[i]`; an edge connects two gates
/// that act on at least one common qubit and therefore cannot be executed in
/// the same Rydberg stage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GateConflictGraph {
    gates: Vec<CzGate>,
    adjacency: Vec<Vec<usize>>,
}

impl GateConflictGraph {
    /// Builds the conflict graph of a CZ block.
    ///
    /// Construction is linear in the number of gates plus conflicts: gates
    /// are bucketed by qubit and only gates sharing a bucket are connected.
    #[must_use]
    pub fn from_block(block: &CzBlock) -> Self {
        let gates: Vec<CzGate> = block.gates().to_vec();
        let mut by_qubit: BTreeMap<Qubit, Vec<usize>> = BTreeMap::new();
        for (i, gate) in gates.iter().enumerate() {
            by_qubit.entry(gate.lo()).or_default().push(i);
            by_qubit.entry(gate.hi()).or_default().push(i);
        }
        let mut adjacency: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); gates.len()];
        for bucket in by_qubit.values() {
            for (k, &i) in bucket.iter().enumerate() {
                for &j in &bucket[k + 1..] {
                    adjacency[i].insert(j);
                    adjacency[j].insert(i);
                }
            }
        }
        GateConflictGraph {
            gates,
            adjacency: adjacency
                .into_iter()
                .map(|s| s.into_iter().collect())
                .collect(),
        }
    }

    /// Number of gate vertices.
    #[must_use]
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// The gate at vertex `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.num_gates()`.
    #[must_use]
    pub fn gate(&self, index: usize) -> CzGate {
        self.gates[index]
    }

    /// All gates, indexed by vertex id.
    #[must_use]
    pub fn gates(&self) -> &[CzGate] {
        &self.gates
    }

    /// Indices of the gates conflicting with gate `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.num_gates()`.
    #[must_use]
    pub fn conflicts(&self, index: usize) -> &[usize] {
        &self.adjacency[index]
    }

    /// Degree (number of conflicting gates) of vertex `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.num_gates()`.
    #[must_use]
    pub fn degree(&self, index: usize) -> usize {
        self.adjacency[index].len()
    }

    /// Returns `true` if the given set of gate indices is an independent set
    /// (no two gates share a qubit), i.e. executable in one Rydberg stage.
    #[must_use]
    pub fn is_independent_set(&self, indices: &[usize]) -> bool {
        let set: BTreeSet<usize> = indices.iter().copied().collect();
        for &i in &set {
            for &j in &self.adjacency[i] {
                if set.contains(&j) && j != i {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: u32) -> Qubit {
        Qubit::new(i)
    }

    fn path_block(n: u32) -> CzBlock {
        CzBlock::from_gates((0..n - 1).map(|i| CzGate::new(q(i), q(i + 1))).collect())
    }

    #[test]
    fn interaction_graph_of_path() {
        let g = InteractionGraph::from_block(&path_block(4));
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(q(0)), 1);
        assert_eq!(g.degree(q(1)), 2);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.neighbors(q(1)), vec![q(0), q(2)]);
    }

    #[test]
    fn repeated_edges_deduplicated() {
        let block = CzBlock::from_gates(vec![CzGate::new(q(0), q(1)), CzGate::new(q(1), q(0))]);
        let g = InteractionGraph::from_block(&block);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn conflict_graph_of_path() {
        let g = GateConflictGraph::from_block(&path_block(4));
        // gates: (0,1), (1,2), (2,3); conflicts: 0-1, 1-2.
        assert_eq!(g.num_gates(), 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(2), 1);
        assert_eq!(g.conflicts(1), &[0, 2]);
    }

    #[test]
    fn independent_set_check() {
        let g = GateConflictGraph::from_block(&path_block(5));
        // gates: (0,1),(1,2),(2,3),(3,4); {0,2} is independent, {0,1} is not.
        assert!(g.is_independent_set(&[0, 2]));
        assert!(g.is_independent_set(&[1, 3]));
        assert!(!g.is_independent_set(&[0, 1]));
        assert!(g.is_independent_set(&[]));
    }

    #[test]
    fn empty_block_graphs() {
        let block = CzBlock::new();
        assert_eq!(InteractionGraph::from_block(&block).num_vertices(), 0);
        assert_eq!(GateConflictGraph::from_block(&block).num_gates(), 0);
    }

    #[test]
    fn star_block_conflicts_fully() {
        let block = CzBlock::from_gates(vec![
            CzGate::new(q(0), q(1)),
            CzGate::new(q(0), q(2)),
            CzGate::new(q(0), q(3)),
        ]);
        let g = GateConflictGraph::from_block(&block);
        assert_eq!(g.degree(0), 2);
        assert!(!g.is_independent_set(&[0, 1]));
        assert!(!g.is_independent_set(&[0, 1, 2]));
    }
}
