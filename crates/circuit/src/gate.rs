//! Gate types supported by the neutral-atom IR.

use crate::Qubit;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Single-qubit gate kinds.
///
/// Neutral-atom hardware implements arbitrary single-qubit rotations via
/// qubit-specific Raman pulses executed in parallel across the plane
/// (Sec. 2.1 of the paper). The compiler only needs the gate *count* and the
/// qubit it acts on; the concrete unitary is carried for completeness so that
/// a program can be lowered back to an executable description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OneQubitGate {
    /// Hadamard gate.
    H,
    /// Pauli-X gate.
    X,
    /// Pauli-Y gate.
    Y,
    /// Pauli-Z gate.
    Z,
    /// Phase gate S = diag(1, i).
    S,
    /// T gate = diag(1, e^{iπ/4}).
    T,
    /// Rotation about the X axis by the given angle (radians).
    Rx(f64),
    /// Rotation about the Y axis by the given angle (radians).
    Ry(f64),
    /// Rotation about the Z axis by the given angle (radians).
    Rz(f64),
}

impl OneQubitGate {
    /// Returns `true` if the gate is diagonal in the computational basis and
    /// therefore commutes with CZ gates.
    #[must_use]
    pub fn is_diagonal(&self) -> bool {
        matches!(
            self,
            OneQubitGate::Z | OneQubitGate::S | OneQubitGate::T | OneQubitGate::Rz(_)
        )
    }
}

impl fmt::Display for OneQubitGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OneQubitGate::H => write!(f, "h"),
            OneQubitGate::X => write!(f, "x"),
            OneQubitGate::Y => write!(f, "y"),
            OneQubitGate::Z => write!(f, "z"),
            OneQubitGate::S => write!(f, "s"),
            OneQubitGate::T => write!(f, "t"),
            OneQubitGate::Rx(a) => write!(f, "rx({a:.4})"),
            OneQubitGate::Ry(a) => write!(f, "ry({a:.4})"),
            OneQubitGate::Rz(a) => write!(f, "rz({a:.4})"),
        }
    }
}

/// A CZ (controlled-Z) gate between two distinct qubits.
///
/// CZ is symmetric, so the pair is stored in normalized order
/// (`lo() <= hi()`), which makes `CzGate` values comparable and hashable
/// regardless of the argument order used at construction time.
///
/// # Example
///
/// ```
/// use powermove_circuit::{CzGate, Qubit};
///
/// let a = CzGate::new(Qubit::new(3), Qubit::new(1));
/// let b = CzGate::new(Qubit::new(1), Qubit::new(3));
/// assert_eq!(a, b);
/// assert_eq!(a.lo(), Qubit::new(1));
/// assert_eq!(a.hi(), Qubit::new(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CzGate {
    lo: Qubit,
    hi: Qubit,
}

impl CzGate {
    /// Creates a CZ gate acting on `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`; a CZ gate must act on two distinct qubits.
    #[must_use]
    pub fn new(a: Qubit, b: Qubit) -> Self {
        assert_ne!(a, b, "CZ gate requires two distinct qubits");
        if a < b {
            CzGate { lo: a, hi: b }
        } else {
            CzGate { lo: b, hi: a }
        }
    }

    /// The lower-indexed qubit of the pair.
    #[must_use]
    pub const fn lo(&self) -> Qubit {
        self.lo
    }

    /// The higher-indexed qubit of the pair.
    #[must_use]
    pub const fn hi(&self) -> Qubit {
        self.hi
    }

    /// Both qubits as an array `[lo, hi]`.
    #[must_use]
    pub const fn qubits(&self) -> [Qubit; 2] {
        [self.lo, self.hi]
    }

    /// Returns `true` if the gate acts on qubit `q`.
    #[must_use]
    pub fn acts_on(&self, q: Qubit) -> bool {
        self.lo == q || self.hi == q
    }

    /// Given one qubit of the pair, returns the other.
    ///
    /// Returns `None` if `q` is not part of this gate.
    #[must_use]
    pub fn partner(&self, q: Qubit) -> Option<Qubit> {
        if q == self.lo {
            Some(self.hi)
        } else if q == self.hi {
            Some(self.lo)
        } else {
            None
        }
    }

    /// Returns `true` if this gate shares at least one qubit with `other`.
    #[must_use]
    pub fn overlaps(&self, other: &CzGate) -> bool {
        self.acts_on(other.lo) || self.acts_on(other.hi)
    }
}

impl fmt::Display for CzGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cz {} {}", self.lo, self.hi)
    }
}

/// A gate in the gate-level IR: either a single-qubit gate or a CZ gate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Gate {
    /// A single-qubit gate applied to one qubit.
    OneQubit {
        /// Target qubit.
        qubit: Qubit,
        /// Gate kind.
        kind: OneQubitGate,
    },
    /// A CZ gate between two qubits.
    Cz(CzGate),
}

impl Gate {
    /// Returns the qubits this gate acts on (one or two entries).
    #[must_use]
    pub fn qubits(&self) -> Vec<Qubit> {
        match self {
            Gate::OneQubit { qubit, .. } => vec![*qubit],
            Gate::Cz(cz) => cz.qubits().to_vec(),
        }
    }

    /// Returns `true` if the gate is a two-qubit (CZ) gate.
    #[must_use]
    pub fn is_two_qubit(&self) -> bool {
        matches!(self, Gate::Cz(_))
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gate::OneQubit { qubit, kind } => write!(f, "{kind} {qubit}"),
            Gate::Cz(cz) => write!(f, "{cz}"),
        }
    }
}

impl From<CzGate> for Gate {
    fn from(cz: CzGate) -> Self {
        Gate::Cz(cz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cz_gate_normalizes_order() {
        let g = CzGate::new(Qubit::new(5), Qubit::new(2));
        assert_eq!(g.lo(), Qubit::new(2));
        assert_eq!(g.hi(), Qubit::new(5));
        assert_eq!(g, CzGate::new(Qubit::new(2), Qubit::new(5)));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn cz_gate_rejects_equal_qubits() {
        let _ = CzGate::new(Qubit::new(1), Qubit::new(1));
    }

    #[test]
    fn cz_partner_and_acts_on() {
        let g = CzGate::new(Qubit::new(0), Qubit::new(3));
        assert!(g.acts_on(Qubit::new(0)));
        assert!(g.acts_on(Qubit::new(3)));
        assert!(!g.acts_on(Qubit::new(1)));
        assert_eq!(g.partner(Qubit::new(0)), Some(Qubit::new(3)));
        assert_eq!(g.partner(Qubit::new(3)), Some(Qubit::new(0)));
        assert_eq!(g.partner(Qubit::new(7)), None);
    }

    #[test]
    fn cz_overlap_detection() {
        let a = CzGate::new(Qubit::new(0), Qubit::new(1));
        let b = CzGate::new(Qubit::new(1), Qubit::new(2));
        let c = CzGate::new(Qubit::new(2), Qubit::new(3));
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&c));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn diagonal_one_qubit_gates() {
        assert!(OneQubitGate::Rz(0.3).is_diagonal());
        assert!(OneQubitGate::Z.is_diagonal());
        assert!(OneQubitGate::S.is_diagonal());
        assert!(OneQubitGate::T.is_diagonal());
        assert!(!OneQubitGate::H.is_diagonal());
        assert!(!OneQubitGate::Rx(0.1).is_diagonal());
    }

    #[test]
    fn gate_qubits_and_kind() {
        let g1 = Gate::OneQubit {
            qubit: Qubit::new(4),
            kind: OneQubitGate::H,
        };
        assert_eq!(g1.qubits(), vec![Qubit::new(4)]);
        assert!(!g1.is_two_qubit());

        let g2: Gate = CzGate::new(Qubit::new(1), Qubit::new(2)).into();
        assert_eq!(g2.qubits(), vec![Qubit::new(1), Qubit::new(2)]);
        assert!(g2.is_two_qubit());
    }

    #[test]
    fn gate_display() {
        let g = Gate::OneQubit {
            qubit: Qubit::new(0),
            kind: OneQubitGate::Rz(1.0),
        };
        assert_eq!(g.to_string(), "rz(1.0000) q0");
        let cz: Gate = CzGate::new(Qubit::new(0), Qubit::new(1)).into();
        assert_eq!(cz.to_string(), "cz q0 q1");
    }
}
