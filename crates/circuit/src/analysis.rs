//! Circuit statistics used by the experiment harness and documentation.

use crate::{BlockProgram, Circuit};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Summary statistics of a circuit and its block-level synthesis.
///
/// # Example
///
/// ```
/// use powermove_circuit::{Circuit, CircuitStats, Qubit};
///
/// # fn main() -> Result<(), powermove_circuit::CircuitError> {
/// let mut c = Circuit::new(3);
/// c.h(Qubit::new(0))?;
/// c.cz(Qubit::new(0), Qubit::new(1))?;
/// let stats = CircuitStats::of(&c);
/// assert_eq!(stats.num_qubits, 3);
/// assert_eq!(stats.cz_gates, 1);
/// assert_eq!(stats.cz_blocks, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CircuitStats {
    /// Circuit width.
    pub num_qubits: u32,
    /// Number of single-qubit gates.
    pub one_qubit_gates: usize,
    /// Number of CZ gates.
    pub cz_gates: usize,
    /// Number of dependent CZ blocks after synthesis.
    pub cz_blocks: usize,
    /// Number of single-qubit layers after synthesis.
    pub one_qubit_layers: usize,
    /// Largest CZ block size.
    pub max_block_size: usize,
    /// Lower bound on Rydberg stages: sum over blocks of the maximum qubit
    /// degree inside the block.
    pub stage_lower_bound: usize,
}

impl CircuitStats {
    /// Computes the statistics of a circuit.
    #[must_use]
    pub fn of(circuit: &Circuit) -> Self {
        let program = BlockProgram::from_circuit(circuit);
        Self::of_program(circuit, &program)
    }

    /// Computes the statistics given an already-synthesized block program.
    #[must_use]
    pub fn of_program(circuit: &Circuit, program: &BlockProgram) -> Self {
        CircuitStats {
            num_qubits: circuit.num_qubits(),
            one_qubit_gates: circuit.one_qubit_count(),
            cz_gates: circuit.cz_count(),
            cz_blocks: program.cz_blocks().count(),
            one_qubit_layers: program.one_qubit_layers().count(),
            max_block_size: program.cz_blocks().map(|b| b.len()).max().unwrap_or(0),
            stage_lower_bound: program.cz_blocks().map(|b| b.max_qubit_degree()).sum(),
        }
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} qubits, {} 1Q gates, {} CZ gates in {} blocks (max block {}, >= {} stages)",
            self.num_qubits,
            self.one_qubit_gates,
            self.cz_gates,
            self.cz_blocks,
            self.max_block_size,
            self.stage_lower_bound
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Qubit;

    #[test]
    fn stats_of_simple_circuit() {
        let mut c = Circuit::new(4);
        for i in 0..4 {
            c.h(Qubit::new(i)).unwrap();
        }
        c.cz(Qubit::new(0), Qubit::new(1)).unwrap();
        c.cz(Qubit::new(2), Qubit::new(3)).unwrap();
        c.cz(Qubit::new(0), Qubit::new(2)).unwrap();
        let s = CircuitStats::of(&c);
        assert_eq!(s.num_qubits, 4);
        assert_eq!(s.one_qubit_gates, 4);
        assert_eq!(s.cz_gates, 3);
        assert_eq!(s.cz_blocks, 1);
        assert_eq!(s.max_block_size, 3);
        assert_eq!(s.stage_lower_bound, 2);
    }

    #[test]
    fn stats_of_empty_circuit() {
        let c = Circuit::new(2);
        let s = CircuitStats::of(&c);
        assert_eq!(s.cz_gates, 0);
        assert_eq!(s.cz_blocks, 0);
        assert_eq!(s.stage_lower_bound, 0);
    }

    #[test]
    fn display_mentions_counts() {
        let mut c = Circuit::new(2);
        c.cz(Qubit::new(0), Qubit::new(1)).unwrap();
        let text = CircuitStats::of(&c).to_string();
        assert!(text.contains("2 qubits"));
        assert!(text.contains("1 CZ gates"));
    }
}
