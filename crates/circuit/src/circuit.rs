//! Gate-level circuit container and builder methods.

use crate::{CircuitError, CzGate, Gate, OneQubitGate, Qubit};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A gate-level quantum circuit over `num_qubits` qubits.
///
/// The circuit stores gates in program order. Builder methods validate qubit
/// indices eagerly so that downstream passes can assume well-formed input.
///
/// # Example
///
/// ```
/// use powermove_circuit::{Circuit, Qubit};
///
/// # fn main() -> Result<(), powermove_circuit::CircuitError> {
/// let mut c = Circuit::new(2);
/// c.h(Qubit::new(0))?;
/// c.cz(Qubit::new(0), Qubit::new(1))?;
/// assert_eq!(c.num_gates(), 2);
/// assert_eq!(c.cz_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    num_qubits: u32,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` is zero; use [`Circuit::try_new`] for a
    /// fallible constructor.
    #[must_use]
    pub fn new(num_qubits: u32) -> Self {
        Self::try_new(num_qubits).expect("circuit must contain at least one qubit")
    }

    /// Creates an empty circuit, returning an error for a zero-qubit circuit.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::EmptyCircuit`] if `num_qubits == 0`.
    pub fn try_new(num_qubits: u32) -> Result<Self, CircuitError> {
        if num_qubits == 0 {
            return Err(CircuitError::EmptyCircuit);
        }
        Ok(Circuit {
            num_qubits,
            gates: Vec::new(),
        })
    }

    /// The number of qubits the circuit acts on.
    #[must_use]
    pub const fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// The gates of the circuit in program order.
    #[must_use]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Total number of gates.
    #[must_use]
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Number of single-qubit gates.
    #[must_use]
    pub fn one_qubit_count(&self) -> usize {
        self.gates.iter().filter(|g| !g.is_two_qubit()).count()
    }

    /// Number of CZ gates.
    #[must_use]
    pub fn cz_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_two_qubit()).count()
    }

    /// Iterates over all qubit identifiers of the circuit.
    pub fn qubits(&self) -> impl Iterator<Item = Qubit> + '_ {
        (0..self.num_qubits).map(Qubit::new)
    }

    fn check_qubit(&self, q: Qubit) -> Result<(), CircuitError> {
        if q.index() >= self.num_qubits {
            Err(CircuitError::QubitOutOfRange {
                qubit: q,
                num_qubits: self.num_qubits,
            })
        } else {
            Ok(())
        }
    }

    /// Appends an arbitrary gate after validating its qubits.
    ///
    /// # Errors
    ///
    /// Returns an error if any referenced qubit is out of range or if a CZ
    /// gate repeats a qubit.
    pub fn push(&mut self, gate: Gate) -> Result<(), CircuitError> {
        match &gate {
            Gate::OneQubit { qubit, .. } => self.check_qubit(*qubit)?,
            Gate::Cz(cz) => {
                self.check_qubit(cz.lo())?;
                self.check_qubit(cz.hi())?;
            }
        }
        self.gates.push(gate);
        Ok(())
    }

    /// Appends a single-qubit gate of the given kind.
    ///
    /// # Errors
    ///
    /// Returns an error if the qubit is out of range.
    pub fn one_qubit(&mut self, qubit: Qubit, kind: OneQubitGate) -> Result<(), CircuitError> {
        self.push(Gate::OneQubit { qubit, kind })
    }

    /// Appends a Hadamard gate.
    ///
    /// # Errors
    ///
    /// Returns an error if the qubit is out of range.
    pub fn h(&mut self, qubit: Qubit) -> Result<(), CircuitError> {
        self.one_qubit(qubit, OneQubitGate::H)
    }

    /// Appends a Pauli-X gate.
    ///
    /// # Errors
    ///
    /// Returns an error if the qubit is out of range.
    pub fn x(&mut self, qubit: Qubit) -> Result<(), CircuitError> {
        self.one_qubit(qubit, OneQubitGate::X)
    }

    /// Appends an Rz rotation.
    ///
    /// # Errors
    ///
    /// Returns an error if the qubit is out of range.
    pub fn rz(&mut self, qubit: Qubit, angle: f64) -> Result<(), CircuitError> {
        self.one_qubit(qubit, OneQubitGate::Rz(angle))
    }

    /// Appends an Rx rotation.
    ///
    /// # Errors
    ///
    /// Returns an error if the qubit is out of range.
    pub fn rx(&mut self, qubit: Qubit, angle: f64) -> Result<(), CircuitError> {
        self.one_qubit(qubit, OneQubitGate::Rx(angle))
    }

    /// Appends an Ry rotation.
    ///
    /// # Errors
    ///
    /// Returns an error if the qubit is out of range.
    pub fn ry(&mut self, qubit: Qubit, angle: f64) -> Result<(), CircuitError> {
        self.one_qubit(qubit, OneQubitGate::Ry(angle))
    }

    /// Appends a CZ gate between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Returns an error if either qubit is out of range or `a == b`.
    pub fn cz(&mut self, a: Qubit, b: Qubit) -> Result<(), CircuitError> {
        if a == b {
            return Err(CircuitError::DuplicateQubit { qubit: a });
        }
        self.push(Gate::Cz(CzGate::new(a, b)))
    }

    /// Appends a ZZ-interaction of arbitrary angle, lowered to the native
    /// gate set as `Rz(a) · Rz(b) · CZ(a, b)`.
    ///
    /// QAOA cost layers and Trotterized Pauli-ZZ terms both reduce to this
    /// pattern; the entangling part costs exactly one CZ, matching how the
    /// paper counts two-qubit gates for these benchmarks.
    ///
    /// # Errors
    ///
    /// Returns an error if either qubit is out of range or `a == b`.
    pub fn zz(&mut self, a: Qubit, b: Qubit, angle: f64) -> Result<(), CircuitError> {
        if a == b {
            return Err(CircuitError::DuplicateQubit { qubit: a });
        }
        self.rz(a, angle / 2.0)?;
        self.rz(b, angle / 2.0)?;
        self.cz(a, b)
    }

    /// Appends a CNOT with control `c` and target `t`, lowered to
    /// `H(t) · CZ(c, t) · H(t)`.
    ///
    /// # Errors
    ///
    /// Returns an error if either qubit is out of range or `c == t`.
    pub fn cnot(&mut self, c: Qubit, t: Qubit) -> Result<(), CircuitError> {
        if c == t {
            return Err(CircuitError::DuplicateQubit { qubit: c });
        }
        self.h(t)?;
        self.cz(c, t)?;
        self.h(t)
    }

    /// Appends a controlled-phase gate of the given angle, lowered to
    /// `Rz(c) · Rz(t) · CZ(c, t)` (one entangling CZ plus local rotations).
    ///
    /// # Errors
    ///
    /// Returns an error if either qubit is out of range or `c == t`.
    pub fn cphase(&mut self, c: Qubit, t: Qubit, angle: f64) -> Result<(), CircuitError> {
        self.zz(c, t, angle)
    }

    /// Appends all gates of `other` to this circuit.
    ///
    /// # Errors
    ///
    /// Returns an error if `other` references qubits outside this circuit's
    /// width.
    pub fn append(&mut self, other: &Circuit) -> Result<(), CircuitError> {
        for gate in other.gates() {
            self.push(*gate)?;
        }
        Ok(())
    }

    /// Returns the CZ gates of the circuit in program order.
    #[must_use]
    pub fn cz_gates(&self) -> Vec<CzGate> {
        self.gates
            .iter()
            .filter_map(|g| match g {
                Gate::Cz(cz) => Some(*cz),
                Gate::OneQubit { .. } => None,
            })
            .collect()
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit({} qubits, {} gates)",
            self.num_qubits,
            self.gates.len()
        )?;
        for gate in &self.gates {
            writeln!(f, "  {gate}")?;
        }
        Ok(())
    }
}

impl Extend<Gate> for Circuit {
    /// Extends the circuit with gates, panicking on invalid qubits.
    ///
    /// Use [`Circuit::push`] when fallible insertion is required.
    fn extend<T: IntoIterator<Item = Gate>>(&mut self, iter: T) {
        for gate in iter {
            self.push(gate).expect("gate references qubit out of range");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_circuit_is_empty() {
        let c = Circuit::new(4);
        assert_eq!(c.num_qubits(), 4);
        assert_eq!(c.num_gates(), 0);
        assert_eq!(c.cz_count(), 0);
        assert_eq!(c.one_qubit_count(), 0);
    }

    #[test]
    fn try_new_rejects_zero_qubits() {
        assert_eq!(Circuit::try_new(0), Err(CircuitError::EmptyCircuit));
    }

    #[test]
    fn builder_methods_validate_range() {
        let mut c = Circuit::new(2);
        assert!(c.h(Qubit::new(0)).is_ok());
        assert!(matches!(
            c.h(Qubit::new(2)),
            Err(CircuitError::QubitOutOfRange { .. })
        ));
        assert!(matches!(
            c.cz(Qubit::new(0), Qubit::new(5)),
            Err(CircuitError::QubitOutOfRange { .. })
        ));
        assert!(matches!(
            c.cz(Qubit::new(1), Qubit::new(1)),
            Err(CircuitError::DuplicateQubit { .. })
        ));
    }

    #[test]
    fn gate_counts_track_kinds() {
        let mut c = Circuit::new(3);
        c.h(Qubit::new(0)).unwrap();
        c.rz(Qubit::new(1), 0.5).unwrap();
        c.cz(Qubit::new(0), Qubit::new(1)).unwrap();
        c.cz(Qubit::new(1), Qubit::new(2)).unwrap();
        assert_eq!(c.num_gates(), 4);
        assert_eq!(c.one_qubit_count(), 2);
        assert_eq!(c.cz_count(), 2);
        assert_eq!(c.cz_gates().len(), 2);
    }

    #[test]
    fn cnot_lowers_to_h_cz_h() {
        let mut c = Circuit::new(2);
        c.cnot(Qubit::new(0), Qubit::new(1)).unwrap();
        assert_eq!(c.num_gates(), 3);
        assert_eq!(c.cz_count(), 1);
        assert_eq!(c.one_qubit_count(), 2);
    }

    #[test]
    fn zz_lowers_to_single_cz() {
        let mut c = Circuit::new(2);
        c.zz(Qubit::new(0), Qubit::new(1), 1.2).unwrap();
        assert_eq!(c.cz_count(), 1);
        assert_eq!(c.one_qubit_count(), 2);
    }

    #[test]
    fn append_concatenates() {
        let mut a = Circuit::new(3);
        a.h(Qubit::new(0)).unwrap();
        let mut b = Circuit::new(3);
        b.cz(Qubit::new(1), Qubit::new(2)).unwrap();
        a.append(&b).unwrap();
        assert_eq!(a.num_gates(), 2);
    }

    #[test]
    fn append_rejects_wider_circuit() {
        let mut a = Circuit::new(2);
        let mut b = Circuit::new(4);
        b.cz(Qubit::new(2), Qubit::new(3)).unwrap();
        assert!(a.append(&b).is_err());
    }

    #[test]
    fn display_lists_gates() {
        let mut c = Circuit::new(2);
        c.h(Qubit::new(0)).unwrap();
        c.cz(Qubit::new(0), Qubit::new(1)).unwrap();
        let text = c.to_string();
        assert!(text.contains("h q0"));
        assert!(text.contains("cz q0 q1"));
    }

    #[test]
    fn extend_accepts_valid_gates() {
        let mut c = Circuit::new(2);
        c.extend([
            Gate::OneQubit {
                qubit: Qubit::new(0),
                kind: OneQubitGate::H,
            },
            Gate::Cz(CzGate::new(Qubit::new(0), Qubit::new(1))),
        ]);
        assert_eq!(c.num_gates(), 2);
    }
}
