//! Quantum circuit intermediate representation for the PowerMove compiler.
//!
//! Neutral-atom compilers such as PowerMove and Enola operate on circuits
//! synthesized into alternating layers of single-qubit (1Q) gates and blocks
//! of mutually commuting CZ gates (Sec. 2.2 of the paper). This crate
//! provides:
//!
//! * the gate-level IR ([`Circuit`], [`Gate`], [`OneQubitGate`], [`CzGate`]),
//! * the block-level IR ([`BlockProgram`], [`CzBlock`], [`OneQubitLayer`])
//!   together with the synthesis pass [`BlockProgram::from_circuit`],
//! * the graph views used by scheduling algorithms: the qubit-level
//!   [`InteractionGraph`] and the gate-level [`GateConflictGraph`].
//!
//! # Example
//!
//! ```
//! use powermove_circuit::{Circuit, Qubit, BlockProgram};
//!
//! # fn main() -> Result<(), powermove_circuit::CircuitError> {
//! let mut circuit = Circuit::new(3);
//! circuit.h(Qubit::new(0))?;
//! circuit.cz(Qubit::new(0), Qubit::new(1))?;
//! circuit.cz(Qubit::new(1), Qubit::new(2))?;
//! let program = BlockProgram::from_circuit(&circuit);
//! assert_eq!(program.cz_blocks().count(), 1);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod analysis;
mod blocks;
mod circuit;
mod error;
mod gate;
mod graph;
pub mod qasm;
mod qubit;

pub use analysis::CircuitStats;
pub use blocks::{BlockProgram, CzBlock, OneQubitLayer, Segment};
pub use circuit::Circuit;
pub use error::CircuitError;
pub use gate::{CzGate, Gate, OneQubitGate};
pub use graph::{GateConflictGraph, InteractionGraph};
pub use qubit::Qubit;
