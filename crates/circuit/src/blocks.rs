//! Block-level IR: alternating single-qubit layers and commuting CZ blocks.
//!
//! The paper (Sec. 2.2) assumes input circuits are synthesized into
//! alternating layers of 1Q gates and *CZ gate blocks*, where every CZ gate
//! inside a block commutes with the others (CZ gates are mutually diagonal)
//! and therefore may be freely reordered by the stage scheduler.

use crate::{Circuit, CzGate, Gate, OneQubitGate, Qubit};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A layer of single-qubit gates.
///
/// Gates within a layer may act on the same qubit (they are then executed
/// back-to-back by the Raman system); the neutral-atom hardware executes the
/// whole layer in parallel across qubits, so only the per-qubit depth of the
/// layer matters for timing.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OneQubitLayer {
    gates: Vec<(Qubit, OneQubitGate)>,
}

impl OneQubitLayer {
    /// Creates an empty layer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a gate to the layer.
    pub fn push(&mut self, qubit: Qubit, kind: OneQubitGate) {
        self.gates.push((qubit, kind));
    }

    /// The gates of this layer in insertion order.
    #[must_use]
    pub fn gates(&self) -> &[(Qubit, OneQubitGate)] {
        &self.gates
    }

    /// Number of gates in the layer.
    #[must_use]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Returns `true` if the layer contains no gates.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Maximum number of gates applied to any single qubit, which determines
    /// the serial depth (and hence duration) of the layer.
    #[must_use]
    pub fn per_qubit_depth(&self) -> usize {
        let mut counts = std::collections::HashMap::new();
        for (q, _) in &self.gates {
            *counts.entry(*q).or_insert(0_usize) += 1;
        }
        counts.values().copied().max().unwrap_or(0)
    }
}

/// A block of mutually commuting CZ gates.
///
/// All CZ gates are diagonal in the computational basis, hence any set of CZ
/// gates commutes; a block collects the CZ gates that appear between two
/// single-qubit layers so the stage scheduler may partition and reorder them
/// freely (Sec. 4 of the paper).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CzBlock {
    gates: Vec<CzGate>,
}

impl CzBlock {
    /// Creates an empty block.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a block from a list of CZ gates.
    #[must_use]
    pub fn from_gates(gates: Vec<CzGate>) -> Self {
        CzBlock { gates }
    }

    /// Adds a CZ gate to the block.
    pub fn push(&mut self, gate: CzGate) {
        self.gates.push(gate);
    }

    /// The CZ gates of the block.
    #[must_use]
    pub fn gates(&self) -> &[CzGate] {
        &self.gates
    }

    /// Number of CZ gates in the block.
    #[must_use]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Returns `true` if the block contains no gates.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The set of qubits touched by at least one gate of the block.
    #[must_use]
    pub fn interacting_qubits(&self) -> BTreeSet<Qubit> {
        self.gates.iter().flat_map(|g| g.qubits()).collect()
    }

    /// Maximum number of gates sharing a single qubit; a lower bound on the
    /// number of Rydberg stages needed to execute the block.
    #[must_use]
    pub fn max_qubit_degree(&self) -> usize {
        let mut counts = std::collections::HashMap::new();
        for g in &self.gates {
            for q in g.qubits() {
                *counts.entry(q).or_insert(0_usize) += 1;
            }
        }
        counts.values().copied().max().unwrap_or(0)
    }
}

impl FromIterator<CzGate> for CzBlock {
    fn from_iter<T: IntoIterator<Item = CzGate>>(iter: T) -> Self {
        CzBlock {
            gates: iter.into_iter().collect(),
        }
    }
}

/// One segment of a block program: either a 1Q layer or a CZ block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Segment {
    /// A layer of single-qubit gates.
    OneQubit(OneQubitLayer),
    /// A block of commuting CZ gates.
    Cz(CzBlock),
}

/// A circuit synthesized into alternating 1Q layers and CZ blocks.
///
/// Segments appear in execution order. Consecutive segments always differ in
/// kind and empty segments are dropped, so iterating [`BlockProgram::cz_blocks`]
/// yields exactly the *dependent CZ blocks* of Sec. 4.1: CZ gates within one
/// block commute, while gates in different blocks are ordered by the 1Q
/// layers between them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockProgram {
    num_qubits: u32,
    segments: Vec<Segment>,
}

impl BlockProgram {
    /// Synthesizes a gate-level circuit into the block-level IR.
    ///
    /// The pass walks the circuit in program order, fusing 1Q gates into
    /// layers and commuting CZ gates into blocks. Commutation is exploited:
    /// CZ gates commute with each other and with *diagonal* single-qubit
    /// gates (Z, S, T, Rz), so a QAOA cost layer interleaved with Rz
    /// rotations still forms a single CZ block. Non-diagonal gates (H, X,
    /// Rx, Ry, ...) create ordering barriers on their qubit, exactly as in
    /// the paper's "dependent CZ blocks" synthesis (Sec. 2.2, Sec. 4.1).
    #[must_use]
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let n = circuit.num_qubits() as usize;
        // blocks[i] is preceded by layers[i]; program order is
        // layers[0], blocks[0], layers[1], blocks[1], ...
        let mut layers: Vec<OneQubitLayer> = Vec::new();
        let mut blocks: Vec<CzBlock> = Vec::new();
        // Earliest block index a CZ on qubit q may join (bumped only by
        // non-diagonal 1Q gates, which do not commute with CZ).
        let mut block_frontier = vec![0_usize; n];
        // Earliest layer a non-diagonal 1Q gate on qubit q may join.
        let mut nd_layer_frontier = vec![0_usize; n];
        // Earliest layer a diagonal 1Q gate on qubit q may join (bumped only
        // by non-diagonal 1Q gates; diagonal gates commute with CZ).
        let mut diag_layer_frontier = vec![0_usize; n];

        let ensure_len_layers = |layers: &mut Vec<OneQubitLayer>, idx: usize| {
            while layers.len() <= idx {
                layers.push(OneQubitLayer::new());
            }
        };
        let ensure_len_blocks = |blocks: &mut Vec<CzBlock>, idx: usize| {
            while blocks.len() <= idx {
                blocks.push(CzBlock::new());
            }
        };

        for gate in circuit.gates() {
            match gate {
                Gate::OneQubit { qubit, kind } => {
                    let q = qubit.as_usize();
                    if kind.is_diagonal() {
                        let idx = diag_layer_frontier[q];
                        ensure_len_layers(&mut layers, idx);
                        layers[idx].push(*qubit, *kind);
                        // A later non-diagonal gate must not commute before
                        // this one; same layer preserves per-qubit order.
                        nd_layer_frontier[q] = nd_layer_frontier[q].max(idx);
                    } else {
                        let idx = nd_layer_frontier[q];
                        ensure_len_layers(&mut layers, idx);
                        layers[idx].push(*qubit, *kind);
                        // A CZ following this gate must come in block idx or
                        // later (layer idx precedes block idx), and later
                        // diagonal gates must not drift before it.
                        block_frontier[q] = block_frontier[q].max(idx);
                        diag_layer_frontier[q] = diag_layer_frontier[q].max(idx);
                    }
                }
                Gate::Cz(cz) => {
                    let a = cz.lo().as_usize();
                    let b = cz.hi().as_usize();
                    let idx = block_frontier[a].max(block_frontier[b]);
                    ensure_len_blocks(&mut blocks, idx);
                    blocks[idx].push(*cz);
                    block_frontier[a] = idx;
                    block_frontier[b] = idx;
                    // Non-diagonal 1Q gates following this CZ must come in
                    // layer idx+1 or later (block idx precedes layer idx+1);
                    // diagonal gates commute with CZ and are unaffected.
                    nd_layer_frontier[a] = nd_layer_frontier[a].max(idx + 1);
                    nd_layer_frontier[b] = nd_layer_frontier[b].max(idx + 1);
                }
            }
        }

        let mut segments = Vec::new();
        let max_len = layers.len().max(blocks.len());
        for i in 0..max_len {
            if let Some(layer) = layers.get(i) {
                if !layer.is_empty() {
                    segments.push(Segment::OneQubit(layer.clone()));
                }
            }
            if let Some(block) = blocks.get(i) {
                if !block.is_empty() {
                    segments.push(Segment::Cz(block.clone()));
                }
            }
        }

        BlockProgram {
            num_qubits: circuit.num_qubits(),
            segments,
        }
    }

    /// Builds a block program directly from pre-partitioned segments.
    ///
    /// Empty segments are dropped.
    #[must_use]
    pub fn from_segments(num_qubits: u32, segments: Vec<Segment>) -> Self {
        let segments = segments
            .into_iter()
            .filter(|s| match s {
                Segment::OneQubit(l) => !l.is_empty(),
                Segment::Cz(b) => !b.is_empty(),
            })
            .collect();
        BlockProgram {
            num_qubits,
            segments,
        }
    }

    /// The number of qubits of the underlying circuit.
    #[must_use]
    pub const fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// The segments in execution order.
    #[must_use]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Iterates over the CZ blocks in execution order.
    pub fn cz_blocks(&self) -> impl Iterator<Item = &CzBlock> + '_ {
        self.segments.iter().filter_map(|s| match s {
            Segment::Cz(b) => Some(b),
            Segment::OneQubit(_) => None,
        })
    }

    /// Iterates over the 1Q layers in execution order.
    pub fn one_qubit_layers(&self) -> impl Iterator<Item = &OneQubitLayer> + '_ {
        self.segments.iter().filter_map(|s| match s {
            Segment::OneQubit(l) => Some(l),
            Segment::Cz(_) => None,
        })
    }

    /// Total number of CZ gates across all blocks.
    #[must_use]
    pub fn total_cz_gates(&self) -> usize {
        self.cz_blocks().map(CzBlock::len).sum()
    }

    /// Total number of single-qubit gates across all layers.
    #[must_use]
    pub fn total_one_qubit_gates(&self) -> usize {
        self.one_qubit_layers().map(OneQubitLayer::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: u32) -> Qubit {
        Qubit::new(i)
    }

    #[test]
    fn commuting_czs_form_single_block() {
        let mut c = Circuit::new(4);
        c.cz(q(0), q(1)).unwrap();
        c.cz(q(2), q(3)).unwrap();
        c.cz(q(0), q(2)).unwrap();
        let p = BlockProgram::from_circuit(&c);
        assert_eq!(p.cz_blocks().count(), 1);
        assert_eq!(p.total_cz_gates(), 3);
    }

    #[test]
    fn one_qubit_gate_splits_blocks() {
        let mut c = Circuit::new(2);
        c.cz(q(0), q(1)).unwrap();
        c.h(q(0)).unwrap();
        c.cz(q(0), q(1)).unwrap();
        let p = BlockProgram::from_circuit(&c);
        assert_eq!(p.cz_blocks().count(), 2);
        assert_eq!(p.one_qubit_layers().count(), 1);
    }

    #[test]
    fn diagonal_gates_do_not_split_blocks() {
        // Rz commutes with CZ, so interleaving Rz rotations (as a QAOA cost
        // layer does) must keep all CZ gates in a single block.
        let mut c = Circuit::new(3);
        c.zz(q(0), q(1), 0.4).unwrap();
        c.zz(q(1), q(2), 0.4).unwrap();
        c.zz(q(0), q(2), 0.4).unwrap();
        let p = BlockProgram::from_circuit(&c);
        assert_eq!(p.cz_blocks().count(), 1);
        assert_eq!(p.total_cz_gates(), 3);
        assert_eq!(p.total_one_qubit_gates(), 6);
    }

    #[test]
    fn diagonal_gates_respect_non_diagonal_barriers() {
        // H; Rz; CZ; on the same qubit: the Rz must stay after the H (same
        // layer, program order preserved), and the CZ block follows.
        let mut c = Circuit::new(2);
        c.h(q(0)).unwrap();
        c.rz(q(0), 0.3).unwrap();
        c.cz(q(0), q(1)).unwrap();
        c.h(q(0)).unwrap();
        c.rz(q(0), 0.7).unwrap();
        c.cz(q(0), q(1)).unwrap();
        let p = BlockProgram::from_circuit(&c);
        // The second H forces the second CZ into a new block; the second Rz
        // must not drift before that H.
        assert_eq!(p.cz_blocks().count(), 2);
        assert_eq!(p.total_one_qubit_gates(), 4);
    }

    #[test]
    fn unrelated_one_qubit_gate_does_not_split() {
        let mut c = Circuit::new(3);
        c.cz(q(0), q(1)).unwrap();
        c.h(q(2)).unwrap();
        c.cz(q(0), q(1)).unwrap();
        let p = BlockProgram::from_circuit(&c);
        // H on q2 does not interfere with CZs on q0/q1, so both CZs commute
        // into the same block.
        assert_eq!(p.cz_blocks().count(), 1);
        assert_eq!(p.total_cz_gates(), 2);
    }

    #[test]
    fn leading_one_qubit_layer_is_kept() {
        let mut c = Circuit::new(2);
        c.h(q(0)).unwrap();
        c.h(q(1)).unwrap();
        c.cz(q(0), q(1)).unwrap();
        let p = BlockProgram::from_circuit(&c);
        assert_eq!(p.segments().len(), 2);
        assert!(matches!(p.segments()[0], Segment::OneQubit(_)));
        assert!(matches!(p.segments()[1], Segment::Cz(_)));
    }

    #[test]
    fn gate_counts_preserved_by_synthesis() {
        let mut c = Circuit::new(5);
        for i in 0..5 {
            c.h(q(i)).unwrap();
        }
        for i in 0..4 {
            c.cnot(q(i), q(i + 1)).unwrap();
        }
        let p = BlockProgram::from_circuit(&c);
        assert_eq!(p.total_cz_gates(), c.cz_count());
        assert_eq!(p.total_one_qubit_gates(), c.one_qubit_count());
    }

    #[test]
    fn cnot_chain_produces_sequential_blocks() {
        // CNOT(0,1); CNOT(1,2): the H gates on the shared qubit force
        // ordering, so the two CZs must land in different blocks.
        let mut c = Circuit::new(3);
        c.cnot(q(0), q(1)).unwrap();
        c.cnot(q(1), q(2)).unwrap();
        let p = BlockProgram::from_circuit(&c);
        assert_eq!(p.cz_blocks().count(), 2);
    }

    #[test]
    fn interacting_qubits_of_block() {
        let block = CzBlock::from_gates(vec![CzGate::new(q(0), q(1)), CzGate::new(q(3), q(4))]);
        let qs = block.interacting_qubits();
        assert_eq!(qs.len(), 4);
        assert!(qs.contains(&q(0)));
        assert!(qs.contains(&q(4)));
        assert!(!qs.contains(&q(2)));
    }

    #[test]
    fn max_qubit_degree_lower_bounds_stages() {
        let block = CzBlock::from_gates(vec![
            CzGate::new(q(0), q(1)),
            CzGate::new(q(0), q(2)),
            CzGate::new(q(0), q(3)),
        ]);
        assert_eq!(block.max_qubit_degree(), 3);
    }

    #[test]
    fn per_qubit_depth_counts_serial_gates() {
        let mut layer = OneQubitLayer::new();
        layer.push(q(0), OneQubitGate::H);
        layer.push(q(0), OneQubitGate::Rz(0.1));
        layer.push(q(1), OneQubitGate::H);
        assert_eq!(layer.per_qubit_depth(), 2);
        assert_eq!(layer.len(), 3);
    }

    #[test]
    fn from_segments_drops_empty() {
        let p = BlockProgram::from_segments(
            2,
            vec![
                Segment::OneQubit(OneQubitLayer::new()),
                Segment::Cz(CzBlock::from_gates(vec![CzGate::new(q(0), q(1))])),
            ],
        );
        assert_eq!(p.segments().len(), 1);
    }

    #[test]
    fn empty_circuit_gives_empty_program() {
        let c = Circuit::new(3);
        let p = BlockProgram::from_circuit(&c);
        assert!(p.segments().is_empty());
        assert_eq!(p.total_cz_gates(), 0);
    }
}
