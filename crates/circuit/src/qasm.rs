//! Minimal OpenQASM 2.0 import/export for the neutral-atom gate set.
//!
//! The supported gate set is exactly the IR's: `h`, `x`, `y`, `z`, `s`, `t`,
//! `rx`, `ry`, `rz` and `cz`, over a single quantum register. This is enough
//! to exchange the paper's benchmark circuits with other toolchains and to
//! round-trip every circuit this crate can represent.

use crate::{Circuit, CircuitError, Gate, OneQubitGate, Qubit};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Largest register size [`from_qasm`] accepts.
///
/// The importer is fed untrusted files by the schedule-lint corpus runner; a
/// declared width like `qreg q[4294967295];` must fail with a structured
/// error instead of attempting a multi-gigabyte allocation. The cap is far
/// above any zoned-architecture instance this workspace compiles.
pub const MAX_QASM_QUBITS: u32 = 65_536;

/// Errors produced while parsing OpenQASM text.
#[derive(Debug, Clone, PartialEq)]
pub enum QasmError {
    /// The header (`OPENQASM` / `qreg`) is missing or malformed.
    MissingHeader,
    /// A line could not be parsed.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A gate is not part of the supported neutral-atom gate set.
    UnsupportedGate {
        /// 1-based line number.
        line: usize,
        /// The gate name.
        gate: String,
    },
    /// The declared register exceeds [`MAX_QASM_QUBITS`].
    RegisterTooLarge {
        /// 1-based line number.
        line: usize,
        /// The declared register width.
        size: u64,
    },
    /// A second `qreg` was declared; only a single register is supported.
    DuplicateRegister {
        /// 1-based line number of the second declaration.
        line: usize,
    },
    /// A qubit reference was invalid for the declared register.
    Circuit(CircuitError),
}

impl fmt::Display for QasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QasmError::MissingHeader => write!(f, "missing OPENQASM header or qreg declaration"),
            QasmError::Malformed { line, text } => {
                write!(f, "malformed statement at line {line}: {text}")
            }
            QasmError::UnsupportedGate { line, gate } => {
                write!(f, "unsupported gate `{gate}` at line {line}")
            }
            QasmError::RegisterTooLarge { line, size } => {
                write!(
                    f,
                    "register of {size} qubits at line {line} exceeds the supported \
                     maximum of {MAX_QASM_QUBITS}"
                )
            }
            QasmError::DuplicateRegister { line } => {
                write!(
                    f,
                    "second qreg declaration at line {line}; only one register is supported"
                )
            }
            QasmError::Circuit(e) => write!(f, "{e}"),
        }
    }
}

impl Error for QasmError {}

impl From<CircuitError> for QasmError {
    fn from(e: CircuitError) -> Self {
        QasmError::Circuit(e)
    }
}

/// Serializes a circuit as OpenQASM 2.0 text.
///
/// # Example
///
/// ```
/// use powermove_circuit::{qasm, Circuit, Qubit};
///
/// # fn main() -> Result<(), powermove_circuit::CircuitError> {
/// let mut c = Circuit::new(2);
/// c.h(Qubit::new(0))?;
/// c.cz(Qubit::new(0), Qubit::new(1))?;
/// let text = qasm::to_qasm(&c);
/// assert!(text.contains("cz q[0], q[1];"));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn to_qasm(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{}];", circuit.num_qubits());
    for gate in circuit.gates() {
        match gate {
            Gate::OneQubit { qubit, kind } => {
                let q = qubit.index();
                let _ = match kind {
                    OneQubitGate::H => writeln!(out, "h q[{q}];"),
                    OneQubitGate::X => writeln!(out, "x q[{q}];"),
                    OneQubitGate::Y => writeln!(out, "y q[{q}];"),
                    OneQubitGate::Z => writeln!(out, "z q[{q}];"),
                    OneQubitGate::S => writeln!(out, "s q[{q}];"),
                    OneQubitGate::T => writeln!(out, "t q[{q}];"),
                    OneQubitGate::Rx(a) => writeln!(out, "rx({a}) q[{q}];"),
                    OneQubitGate::Ry(a) => writeln!(out, "ry({a}) q[{q}];"),
                    OneQubitGate::Rz(a) => writeln!(out, "rz({a}) q[{q}];"),
                };
            }
            Gate::Cz(cz) => {
                let _ = writeln!(out, "cz q[{}], q[{}];", cz.lo().index(), cz.hi().index());
            }
        }
    }
    out
}

/// Parses OpenQASM 2.0 text into a [`Circuit`].
///
/// Only a single `qreg` and the neutral-atom gate set are supported; `creg`,
/// `measure` and `barrier` statements are ignored.
///
/// The parser is hardened against untrusted input (the schedule-lint corpus
/// runner feeds it arbitrary files): truncated or duplicated headers,
/// registers beyond [`MAX_QASM_QUBITS`], out-of-range qubit indices, unknown
/// gates, wrong gate arities and non-finite angles all return a structured
/// [`QasmError`] — never a panic or an unbounded allocation.
///
/// # Errors
///
/// Returns a [`QasmError`] describing the first unparsable or unsupported
/// statement.
pub fn from_qasm(text: &str) -> Result<Circuit, QasmError> {
    let mut circuit: Option<Circuit> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let stmt = raw.split("//").next().unwrap_or("").trim();
        if stmt.is_empty()
            || stmt.starts_with("OPENQASM")
            || stmt.starts_with("include")
            || stmt.starts_with("creg")
            || stmt.starts_with("measure")
            || stmt.starts_with("barrier")
        {
            continue;
        }
        let stmt = stmt.trim_end_matches(';').trim();
        if let Some(rest) = stmt.strip_prefix("qreg") {
            if circuit.is_some() {
                return Err(QasmError::DuplicateRegister { line });
            }
            let size = parse_register_size(rest).ok_or(QasmError::Malformed {
                line,
                text: raw.to_string(),
            })?;
            if size > u64::from(MAX_QASM_QUBITS) {
                return Err(QasmError::RegisterTooLarge { line, size });
            }
            circuit = Some(Circuit::try_new(size as u32).map_err(QasmError::from)?);
            continue;
        }
        let circuit_ref = circuit.as_mut().ok_or(QasmError::MissingHeader)?;
        parse_gate(circuit_ref, stmt, line, raw)?;
    }
    circuit.ok_or(QasmError::MissingHeader)
}

fn parse_register_size(rest: &str) -> Option<u64> {
    let open = rest.find('[')?;
    let close = rest.find(']')?;
    rest[open + 1..close].trim().parse().ok()
}

fn parse_qubit_refs(args: &str) -> Option<Vec<u32>> {
    args.split(',')
        .map(|part| {
            let open = part.find('[')?;
            let close = part.find(']')?;
            part[open + 1..close].trim().parse().ok()
        })
        .collect()
}

/// The supported gate names; used to tell an *unknown* gate (→
/// [`QasmError::UnsupportedGate`]) apart from a known gate applied with the
/// wrong arity or parameter list (→ [`QasmError::Malformed`]).
const KNOWN_GATES: [&str; 11] = ["h", "x", "y", "z", "s", "t", "rx", "ry", "rz", "cz", "cx"];

fn parse_gate(circuit: &mut Circuit, stmt: &str, line: usize, raw: &str) -> Result<(), QasmError> {
    let malformed = || QasmError::Malformed {
        line,
        text: raw.to_string(),
    };
    let (head, args) = stmt.split_once(' ').ok_or_else(malformed)?;
    let qubits = parse_qubit_refs(args).ok_or_else(malformed)?;
    let (name, angle) = match head.split_once('(') {
        Some((name, rest)) => {
            let angle: f64 = rest
                .trim_end_matches(')')
                .trim()
                .parse()
                .map_err(|_| malformed())?;
            // `f64::parse` accepts "inf" and "NaN"; neither is a rotation
            // angle any backend can schedule.
            if !angle.is_finite() {
                return Err(malformed());
            }
            (name.trim(), Some(angle))
        }
        None => (head.trim(), None),
    };

    let q = |i: usize| Qubit::new(qubits[i]);
    match (name, angle, qubits.len()) {
        ("h", None, 1) => circuit.h(q(0))?,
        ("x", None, 1) => circuit.x(q(0))?,
        ("y", None, 1) => circuit.one_qubit(q(0), OneQubitGate::Y)?,
        ("z", None, 1) => circuit.one_qubit(q(0), OneQubitGate::Z)?,
        ("s", None, 1) => circuit.one_qubit(q(0), OneQubitGate::S)?,
        ("t", None, 1) => circuit.one_qubit(q(0), OneQubitGate::T)?,
        ("rx", Some(a), 1) => circuit.rx(q(0), a)?,
        ("ry", Some(a), 1) => circuit.ry(q(0), a)?,
        ("rz", Some(a), 1) => circuit.rz(q(0), a)?,
        ("cz", None, 2) => circuit.cz(q(0), q(1))?,
        ("cx", None, 2) => circuit.cnot(q(0), q(1))?,
        _ if KNOWN_GATES.contains(&name) => return Err(malformed()),
        _ => {
            return Err(QasmError::UnsupportedGate {
                line,
                gate: name.to_string(),
            })
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: u32) -> Qubit {
        Qubit::new(i)
    }

    #[test]
    fn export_contains_header_and_gates() {
        let mut c = Circuit::new(3);
        c.h(q(0)).unwrap();
        c.rz(q(1), 0.25).unwrap();
        c.cz(q(0), q(2)).unwrap();
        let text = to_qasm(&c);
        assert!(text.starts_with("OPENQASM 2.0;"));
        assert!(text.contains("qreg q[3];"));
        assert!(text.contains("h q[0];"));
        assert!(text.contains("rz(0.25) q[1];"));
        assert!(text.contains("cz q[0], q[2];"));
    }

    #[test]
    fn round_trip_preserves_circuit() {
        let mut c = Circuit::new(4);
        c.h(q(0)).unwrap();
        c.x(q(1)).unwrap();
        c.ry(q(2), 1.25).unwrap();
        c.rz(q(3), -0.5).unwrap();
        c.cz(q(0), q(3)).unwrap();
        c.cz(q(1), q(2)).unwrap();
        let parsed = from_qasm(&to_qasm(&c)).unwrap();
        assert_eq!(parsed, c);
    }

    #[test]
    fn parses_cx_as_lowered_cnot() {
        let text = "OPENQASM 2.0;\nqreg q[2];\ncx q[0], q[1];\n";
        let c = from_qasm(text).unwrap();
        assert_eq!(c.cz_count(), 1);
        assert_eq!(c.one_qubit_count(), 2);
    }

    #[test]
    fn ignores_comments_measure_and_barrier() {
        let text = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\n// a comment\nh q[0]; // trailing\nbarrier q;\nmeasure q[0] -> c[0];\n";
        let c = from_qasm(text).unwrap();
        assert_eq!(c.num_gates(), 1);
    }

    #[test]
    fn missing_header_is_an_error() {
        assert_eq!(from_qasm("h q[0];"), Err(QasmError::MissingHeader));
        assert!(matches!(from_qasm(""), Err(QasmError::MissingHeader)));
    }

    #[test]
    fn unsupported_gate_is_reported_with_line() {
        let text = "OPENQASM 2.0;\nqreg q[2];\nccx q[0], q[1], q[1];\n";
        match from_qasm(text) {
            Err(QasmError::UnsupportedGate { line, gate }) => {
                assert_eq!(line, 3);
                assert_eq!(gate, "ccx");
            }
            other => panic!("expected unsupported-gate error, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_qubit_is_a_circuit_error() {
        let text = "OPENQASM 2.0;\nqreg q[2];\nh q[5];\n";
        assert!(matches!(from_qasm(text), Err(QasmError::Circuit(_))));
    }

    #[test]
    fn malformed_statement_is_reported() {
        let text = "OPENQASM 2.0;\nqreg q[2];\nrx() q[0];\n";
        assert!(matches!(from_qasm(text), Err(QasmError::Malformed { .. })));
    }
}
