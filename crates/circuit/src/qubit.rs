//! Logical qubit identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a logical (program-level) qubit.
///
/// Qubits are referred to by a dense index `0..n` where `n` is the circuit
/// width. The compiler maps each logical qubit to a physical atom held in an
/// SLM or AOD trap.
///
/// # Example
///
/// ```
/// use powermove_circuit::Qubit;
///
/// let q = Qubit::new(3);
/// assert_eq!(q.index(), 3);
/// assert_eq!(format!("{q}"), "q3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Qubit(u32);

impl Qubit {
    /// Creates a qubit identifier from its index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        Qubit(index)
    }

    /// Returns the dense index of this qubit.
    #[must_use]
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Returns the index as a `usize`, convenient for slice indexing.
    #[must_use]
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Qubit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl From<u32> for Qubit {
    fn from(index: u32) -> Self {
        Qubit(index)
    }
}

impl From<Qubit> for u32 {
    fn from(q: Qubit) -> Self {
        q.0
    }
}

impl From<Qubit> for usize {
    fn from(q: Qubit) -> Self {
        q.0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn new_and_index_round_trip() {
        for i in [0_u32, 1, 7, 1000] {
            assert_eq!(Qubit::new(i).index(), i);
        }
    }

    #[test]
    fn display_uses_q_prefix() {
        assert_eq!(Qubit::new(42).to_string(), "q42");
    }

    #[test]
    fn conversions_are_consistent() {
        let q: Qubit = 5_u32.into();
        assert_eq!(u32::from(q), 5);
        assert_eq!(usize::from(q), 5);
        assert_eq!(q.as_usize(), 5);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(Qubit::new(1) < Qubit::new(2));
        assert!(Qubit::new(3) > Qubit::new(0));
    }

    #[test]
    fn hashable_and_distinct() {
        let set: HashSet<Qubit> = (0..10).map(Qubit::new).collect();
        assert_eq!(set.len(), 10);
    }
}
