//! Error types for circuit construction.

use crate::Qubit;
use std::error::Error;
use std::fmt;

/// Errors produced while constructing or validating a [`crate::Circuit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// A gate referenced a qubit index outside the circuit width.
    QubitOutOfRange {
        /// The offending qubit.
        qubit: Qubit,
        /// The circuit width.
        num_qubits: u32,
    },
    /// A two-qubit gate was given the same qubit twice.
    DuplicateQubit {
        /// The repeated qubit.
        qubit: Qubit,
    },
    /// The circuit was declared with zero qubits.
    EmptyCircuit,
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { qubit, num_qubits } => {
                write!(
                    f,
                    "qubit {qubit} is out of range for a circuit of {num_qubits} qubits"
                )
            }
            CircuitError::DuplicateQubit { qubit } => {
                write!(f, "two-qubit gate uses qubit {qubit} twice")
            }
            CircuitError::EmptyCircuit => write!(f, "circuit must contain at least one qubit"),
        }
    }
}

impl Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = CircuitError::QubitOutOfRange {
            qubit: Qubit::new(9),
            num_qubits: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains("q9"));
        assert!(msg.contains('4'));

        let e = CircuitError::DuplicateQubit {
            qubit: Qubit::new(2),
        };
        assert!(e.to_string().contains("q2"));

        assert!(CircuitError::EmptyCircuit
            .to_string()
            .contains("at least one"));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<CircuitError>();
    }
}
