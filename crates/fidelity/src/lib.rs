//! Fidelity model for compiled neutral-atom programs.
//!
//! Implements Eq. (1) of the PowerMove paper:
//!
//! ```text
//! f_output = f1^g1 · f2^g2 · f_exc^(Σ_i n_i) · f_trans^N_trans · Π_q (1 − T_q / T2)
//! ```
//!
//! where `g1`/`g2` are the single- and two-qubit gate counts, `Σ n_i` is the
//! total number of non-interacting qubits exposed to Rydberg excitations,
//! `N_trans` is the number of SLM↔AOD transfers and `T_q` is the idle time of
//! qubit `q` outside the storage zone.
//!
//! The per-factor [`FidelityBreakdown`] is what Fig. 6 of the paper plots;
//! [`evaluate_program`] couples the model to the schedule simulator so a
//! single call produces both the execution trace and the fidelity estimate.
//!
//! # Example
//!
//! ```
//! use powermove_hardware::{Architecture, Zone};
//! use powermove_schedule::{CompiledProgram, Layout};
//! use powermove_fidelity::evaluate_program;
//!
//! let arch = Architecture::for_qubits(4);
//! let layout = Layout::row_major(&arch, 4, Zone::Compute).unwrap();
//! let program = CompiledProgram::new(arch, 4, layout, vec![]);
//! let report = evaluate_program(&program).unwrap();
//! assert_eq!(report.breakdown.total(), 1.0);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod breakdown;
mod model;
mod movement;
mod sensitivity;

pub use breakdown::FidelityBreakdown;
pub use model::{evaluate_program, evaluate_trace, FidelityReport};
pub use movement::{attribute_movement, AodMovementStats};
pub use sensitivity::{sensitivity_sweep, ParameterAxis, SensitivityPoint};
