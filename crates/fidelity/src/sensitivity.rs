//! Parameter sensitivity analysis.
//!
//! The fidelity estimate of Eq. (1) depends on hardware parameters that are
//! still improving rapidly (CZ fidelity, coherence time, transfer fidelity).
//! This module re-evaluates a fixed execution trace under perturbed
//! parameters, which answers questions like "how much of PowerMove's
//! advantage survives if T2 doubles?" without recompiling the program.

use crate::{evaluate_trace, FidelityBreakdown};
use powermove_hardware::PhysicalParams;
use powermove_schedule::ExecutionTrace;
use serde::{Deserialize, Serialize};

/// A named single-parameter perturbation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ParameterAxis {
    /// Scale the CZ-gate infidelity `1 − f2` by the factor.
    CzInfidelity,
    /// Scale the excitation infidelity `1 − f_exc` by the factor.
    ExcitationInfidelity,
    /// Scale the transfer infidelity `1 − f_trans` by the factor.
    TransferInfidelity,
    /// Scale the coherence time `T2` by the factor.
    CoherenceTime,
}

impl ParameterAxis {
    /// All axes, in a fixed report order.
    pub const ALL: [ParameterAxis; 4] = [
        ParameterAxis::CzInfidelity,
        ParameterAxis::ExcitationInfidelity,
        ParameterAxis::TransferInfidelity,
        ParameterAxis::CoherenceTime,
    ];

    /// Applies the perturbation `factor` to a copy of `params`.
    ///
    /// For the infidelity axes a factor of 0.5 means "half the error"; for
    /// [`ParameterAxis::CoherenceTime`] a factor of 2.0 means "twice the
    /// coherence time". Fidelities are clamped to `[0, 1]`.
    #[must_use]
    pub fn apply(self, params: &PhysicalParams, factor: f64) -> PhysicalParams {
        let mut p = *params;
        let scale_infidelity = |f: f64| (1.0 - (1.0 - f) * factor).clamp(0.0, 1.0);
        match self {
            ParameterAxis::CzInfidelity => p.cz_fidelity = scale_infidelity(p.cz_fidelity),
            ParameterAxis::ExcitationInfidelity => {
                p.excitation_fidelity = scale_infidelity(p.excitation_fidelity);
            }
            ParameterAxis::TransferInfidelity => {
                p.transfer_fidelity = scale_infidelity(p.transfer_fidelity);
            }
            ParameterAxis::CoherenceTime => p.coherence_time *= factor,
        }
        p
    }
}

/// One point of a sensitivity sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensitivityPoint {
    /// The perturbed axis.
    pub axis: ParameterAxis,
    /// The applied factor.
    pub factor: f64,
    /// The resulting fidelity breakdown.
    pub breakdown: FidelityBreakdown,
}

/// Re-evaluates a trace while sweeping one parameter axis over the given
/// factors.
///
/// # Example
///
/// ```
/// use powermove_fidelity::{sensitivity_sweep, ParameterAxis};
/// use powermove_hardware::{Architecture, PhysicalParams, Zone};
/// use powermove_schedule::{simulate, CompiledProgram, Layout};
///
/// let arch = Architecture::for_qubits(2);
/// let layout = Layout::row_major(&arch, 2, Zone::Compute).unwrap();
/// let program = CompiledProgram::new(arch, 2, layout, vec![]);
/// let trace = simulate(&program).unwrap();
/// let sweep = sensitivity_sweep(
///     &trace,
///     &PhysicalParams::default(),
///     ParameterAxis::CoherenceTime,
///     &[1.0, 2.0],
/// );
/// assert_eq!(sweep.len(), 2);
/// ```
#[must_use]
pub fn sensitivity_sweep(
    trace: &ExecutionTrace,
    params: &PhysicalParams,
    axis: ParameterAxis,
    factors: &[f64],
) -> Vec<SensitivityPoint> {
    factors
        .iter()
        .map(|&factor| SensitivityPoint {
            axis,
            factor,
            breakdown: evaluate_trace(trace, &axis.apply(params, factor)),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermove_schedule::Layout;

    fn trace_with(cz: usize, exposure: usize, transfers: usize, idle: f64) -> ExecutionTrace {
        ExecutionTrace {
            total_time: idle,
            cz_gate_count: cz,
            one_qubit_gate_count: 0,
            transfer_count: transfers,
            excitation_exposure: exposure,
            rydberg_stage_count: 1,
            move_group_count: 0,
            coll_move_count: 0,
            total_move_distance: 0.0,
            max_move_distance: 0.0,
            movement_time: 0.0,
            idle_time: vec![idle],
            storage_time: vec![0.0],
            final_layout: Layout::empty(1),
        }
    }

    #[test]
    fn halving_cz_infidelity_improves_two_qubit_factor() {
        let params = PhysicalParams::default();
        let trace = trace_with(100, 0, 0, 0.0);
        let sweep = sensitivity_sweep(&trace, &params, ParameterAxis::CzInfidelity, &[1.0, 0.5]);
        assert!(sweep[1].breakdown.two_qubit > sweep[0].breakdown.two_qubit);
        // Other factors are untouched.
        assert_eq!(sweep[1].breakdown.transfer, sweep[0].breakdown.transfer);
    }

    #[test]
    fn doubling_coherence_time_halves_decoherence_loss() {
        let params = PhysicalParams::default();
        let trace = trace_with(0, 0, 0, 0.15);
        let sweep = sensitivity_sweep(&trace, &params, ParameterAxis::CoherenceTime, &[1.0, 2.0]);
        let loss1 = 1.0 - sweep[0].breakdown.decoherence;
        let loss2 = 1.0 - sweep[1].breakdown.decoherence;
        assert!((loss2 - loss1 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn excitation_and_transfer_axes_target_their_factor() {
        let params = PhysicalParams::default();
        let trace = trace_with(0, 50, 40, 0.0);
        let exc = sensitivity_sweep(&trace, &params, ParameterAxis::ExcitationInfidelity, &[0.0]);
        assert_eq!(exc[0].breakdown.excitation, 1.0);
        let trans = sensitivity_sweep(&trace, &params, ParameterAxis::TransferInfidelity, &[0.0]);
        assert_eq!(trans[0].breakdown.transfer, 1.0);
    }

    #[test]
    fn factor_one_reproduces_baseline() {
        let params = PhysicalParams::default();
        let trace = trace_with(10, 5, 4, 0.01);
        let baseline = evaluate_trace(&trace, &params);
        for axis in ParameterAxis::ALL {
            let sweep = sensitivity_sweep(&trace, &params, axis, &[1.0]);
            assert_eq!(sweep[0].breakdown, baseline, "{axis:?}");
        }
    }

    #[test]
    fn fidelities_stay_clamped() {
        let params = PhysicalParams::default();
        let p = ParameterAxis::CzInfidelity.apply(&params, 1e6);
        assert!(p.cz_fidelity >= 0.0);
    }
}
