//! Per-AOD attribution of movement error.
//!
//! Every moved qubit costs two SLM↔AOD transfers, each multiplying the
//! program fidelity by `f_trans` (Eq. 1). With several AOD arrays flying
//! batches in parallel, the aggregate transfer factor no longer says *which*
//! array's schedule carries the error — this module splits the movement
//! error (and the busy time behind the decoherence term) per AOD batch, so
//! multi-AOD scheduling decisions can be audited array by array.

use powermove_hardware::AodId;
use powermove_schedule::{CompiledProgram, Instruction};
use serde::{Deserialize, Serialize};

/// Movement totals and error attribution for one AOD array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AodMovementStats {
    /// The AOD array.
    pub aod: AodId,
    /// Number of collective moves this array executed.
    pub coll_moves: usize,
    /// Total qubits moved (each costing two transfers).
    pub moved_qubits: usize,
    /// Sum of the array's single-qubit movement distances, in meters.
    pub total_distance: f64,
    /// Time the array spent busy — two transfers plus its own translation
    /// per collective move — in seconds. Overlapping windows mean the sum
    /// across arrays can exceed the program's movement wall clock.
    pub busy_time: f64,
    /// Transfer-error share of this array: `1 − f_trans^(2·moved_qubits)`.
    pub transfer_infidelity: f64,
}

/// Splits a program's movement effort and transfer error across the AOD
/// arrays that executed it.
///
/// Returns one entry per AOD that appears in the program, ordered by AOD
/// index. The per-array `moved_qubits` sum to half the trace's transfer
/// count, and the `total_distance` entries sum to the trace's total
/// movement distance — the attribution is exact, not an estimate.
#[must_use]
pub fn attribute_movement(program: &CompiledProgram) -> Vec<AodMovementStats> {
    let arch = program.architecture();
    let params = arch.params();
    let mut stats: Vec<AodMovementStats> = Vec::new();
    for instruction in program.instructions() {
        let Instruction::MoveGroup { coll_moves } = instruction else {
            continue;
        };
        for cm in coll_moves {
            if cm.is_empty() {
                continue;
            }
            let entry = match stats.iter_mut().find(|s| s.aod == cm.aod) {
                Some(entry) => entry,
                None => {
                    stats.push(AodMovementStats {
                        aod: cm.aod,
                        coll_moves: 0,
                        moved_qubits: 0,
                        total_distance: 0.0,
                        busy_time: 0.0,
                        transfer_infidelity: 0.0,
                    });
                    stats.last_mut().expect("just pushed")
                }
            };
            entry.coll_moves += 1;
            entry.moved_qubits += cm.len();
            entry.total_distance += cm.total_distance(arch);
            entry.busy_time += 2.0 * params.transfer_duration + cm.move_duration(arch);
        }
    }
    for entry in &mut stats {
        entry.transfer_infidelity =
            1.0 - params.transfer_fidelity.powi(2 * entry.moved_qubits as i32);
    }
    stats.sort_by_key(|s| s.aod);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermove_circuit::Qubit;
    use powermove_hardware::{Architecture, Zone};
    use powermove_schedule::{simulate, CollMove, Layout, SiteMove};

    fn q(i: u32) -> Qubit {
        Qubit::new(i)
    }

    fn two_aod_program() -> CompiledProgram {
        let arch = Architecture::for_qubits(9).with_num_aods(2);
        let layout = Layout::row_major(&arch, 4, Zone::Compute).unwrap();
        let g = arch.grid().clone();
        let s = |c, r| g.site(Zone::Compute, c, r).unwrap();
        CompiledProgram::new(
            arch,
            4,
            layout,
            vec![
                Instruction::move_group(vec![
                    CollMove::new(AodId::new(0), vec![SiteMove::new(q(0), s(0, 0), s(0, 2))]),
                    CollMove::new(AodId::new(1), vec![SiteMove::new(q(3), s(0, 1), s(1, 2))]),
                ]),
                Instruction::move_group(vec![CollMove::new(
                    AodId::new(0),
                    vec![
                        SiteMove::new(q(1), s(1, 0), s(1, 1)),
                        SiteMove::new(q(2), s(2, 0), s(2, 1)),
                    ],
                )]),
            ],
        )
    }

    #[test]
    fn attribution_sums_match_the_execution_trace() {
        let program = two_aod_program();
        let trace = simulate(&program).unwrap();
        let stats = attribute_movement(&program);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].aod, AodId::new(0));
        assert_eq!(stats[1].aod, AodId::new(1));
        let moved: usize = stats.iter().map(|s| s.moved_qubits).sum();
        assert_eq!(2 * moved, trace.transfer_count);
        let distance: f64 = stats.iter().map(|s| s.total_distance).sum();
        assert!((distance - trace.total_move_distance).abs() < 1e-12);
        let coll: usize = stats.iter().map(|s| s.coll_moves).sum();
        assert_eq!(coll, trace.coll_move_count);
        // Overlapping windows: per-array busy time sums past the wall clock
        // only when arrays share a window; each array's busy time is capped
        // by the movement wall clock.
        for s in &stats {
            assert!(s.busy_time > 0.0);
            assert!(s.busy_time <= trace.movement_time + 1e-12);
        }
    }

    #[test]
    fn transfer_infidelity_follows_the_transfer_count() {
        let program = two_aod_program();
        let params = *program.architecture().params();
        let stats = attribute_movement(&program);
        // aod0 moved 3 qubits (6 transfers), aod1 moved 1 (2 transfers).
        assert_eq!(stats[0].moved_qubits, 3);
        assert_eq!(stats[1].moved_qubits, 1);
        assert!(
            (stats[0].transfer_infidelity - (1.0 - params.transfer_fidelity.powi(6))).abs() < 1e-12
        );
        assert!(stats[0].transfer_infidelity > stats[1].transfer_infidelity);
    }

    #[test]
    fn programs_without_moves_attribute_nothing() {
        let arch = Architecture::for_qubits(4);
        let layout = Layout::row_major(&arch, 4, Zone::Compute).unwrap();
        let program = CompiledProgram::new(arch, 4, layout, vec![Instruction::rydberg(vec![])]);
        assert!(attribute_movement(&program).is_empty());
    }
}
