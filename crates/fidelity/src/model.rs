//! Evaluation of Eq. (1) over an execution trace.

use crate::FidelityBreakdown;
use powermove_hardware::PhysicalParams;
use powermove_schedule::{simulate, CompiledProgram, ExecutionTrace, ScheduleError};
use serde::{Deserialize, Serialize};

/// The result of evaluating a compiled program: its execution trace, the
/// fidelity breakdown and the execution-time metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FidelityReport {
    /// Per-factor fidelity breakdown (Eq. 1).
    pub breakdown: FidelityBreakdown,
    /// Total execution time `T_exe` in seconds.
    pub execution_time: f64,
    /// The underlying execution trace.
    pub trace: ExecutionTrace,
}

impl FidelityReport {
    /// Total output fidelity (all five factors).
    #[must_use]
    pub fn fidelity(&self) -> f64 {
        self.breakdown.total()
    }

    /// Output fidelity excluding the 1Q factor, as reported in the paper's
    /// tables.
    #[must_use]
    pub fn fidelity_excluding_one_qubit(&self) -> f64 {
        self.breakdown.total_excluding_one_qubit()
    }

    /// Execution time in microseconds, the unit used by Table 3.
    #[must_use]
    pub fn execution_time_us(&self) -> f64 {
        self.execution_time * 1e6
    }
}

/// Evaluates Eq. (1) over an execution trace.
///
/// The decoherence factor clamps each per-qubit term `1 − T_q/T2` at zero, so
/// programs whose idle time exceeds the coherence time report zero fidelity
/// rather than a negative number.
#[must_use]
pub fn evaluate_trace(trace: &ExecutionTrace, params: &PhysicalParams) -> FidelityBreakdown {
    let one_qubit = params
        .one_qubit_fidelity
        .powi(trace.one_qubit_gate_count as i32);
    let two_qubit = params.cz_fidelity.powi(trace.cz_gate_count as i32);
    let excitation = params
        .excitation_fidelity
        .powi(trace.excitation_exposure as i32);
    let transfer = params.transfer_fidelity.powi(trace.transfer_count as i32);
    let decoherence = trace
        .idle_time
        .iter()
        .map(|t| (1.0 - t / params.coherence_time).max(0.0))
        .product();
    FidelityBreakdown {
        one_qubit,
        two_qubit,
        excitation,
        transfer,
        decoherence,
    }
}

/// Simulates a compiled program and evaluates its fidelity.
///
/// # Errors
///
/// Returns a [`ScheduleError`] if the program violates a hardware rule (see
/// [`powermove_schedule::simulate`]).
pub fn evaluate_program(program: &CompiledProgram) -> Result<FidelityReport, ScheduleError> {
    let trace = simulate(program)?;
    let breakdown = evaluate_trace(&trace, program.architecture().params());
    Ok(FidelityReport {
        breakdown,
        execution_time: trace.total_time,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermove_circuit::{CzGate, Qubit};
    use powermove_hardware::{Architecture, Zone};
    use powermove_schedule::{CompiledProgram, Instruction, Layout};

    fn q(i: u32) -> Qubit {
        Qubit::new(i)
    }

    fn trace_template(n: usize) -> ExecutionTrace {
        ExecutionTrace {
            total_time: 0.0,
            cz_gate_count: 0,
            one_qubit_gate_count: 0,
            transfer_count: 0,
            excitation_exposure: 0,
            rydberg_stage_count: 0,
            move_group_count: 0,
            coll_move_count: 0,
            total_move_distance: 0.0,
            max_move_distance: 0.0,
            movement_time: 0.0,
            idle_time: vec![0.0; n],
            storage_time: vec![0.0; n],
            final_layout: Layout::empty(n as u32),
        }
    }

    #[test]
    fn gate_counts_drive_gate_factors() {
        let params = PhysicalParams::default();
        let mut trace = trace_template(2);
        trace.cz_gate_count = 10;
        trace.one_qubit_gate_count = 100;
        let b = evaluate_trace(&trace, &params);
        assert!((b.two_qubit - 0.995_f64.powi(10)).abs() < 1e-12);
        assert!((b.one_qubit - 0.9999_f64.powi(100)).abs() < 1e-12);
        assert_eq!(b.excitation, 1.0);
        assert_eq!(b.transfer, 1.0);
        assert_eq!(b.decoherence, 1.0);
    }

    #[test]
    fn exposure_and_transfer_factors() {
        let params = PhysicalParams::default();
        let mut trace = trace_template(2);
        trace.excitation_exposure = 4;
        trace.transfer_count = 6;
        let b = evaluate_trace(&trace, &params);
        assert!((b.excitation - 0.9975_f64.powi(4)).abs() < 1e-12);
        assert!((b.transfer - 0.999_f64.powi(6)).abs() < 1e-12);
    }

    #[test]
    fn decoherence_uses_idle_time_over_t2() {
        let params = PhysicalParams::default();
        let mut trace = trace_template(2);
        trace.idle_time = vec![0.15, 0.3];
        let b = evaluate_trace(&trace, &params);
        let expected = (1.0 - 0.15 / 1.5) * (1.0 - 0.3 / 1.5);
        assert!((b.decoherence - expected).abs() < 1e-12);
    }

    #[test]
    fn decoherence_clamps_at_zero() {
        let params = PhysicalParams::default();
        let mut trace = trace_template(1);
        trace.idle_time = vec![10.0];
        let b = evaluate_trace(&trace, &params);
        assert_eq!(b.decoherence, 0.0);
        assert_eq!(b.total(), 0.0);
    }

    #[test]
    fn evaluate_program_couples_simulation_and_model() {
        let arch = Architecture::for_qubits(2);
        let mut layout = Layout::row_major(&arch, 2, Zone::Compute).unwrap();
        let s0 = layout.site_of(q(0)).unwrap();
        layout.place(q(1), s0);
        let p = CompiledProgram::new(
            arch,
            2,
            layout,
            vec![Instruction::rydberg(vec![CzGate::new(q(0), q(1))])],
        );
        let report = evaluate_program(&p).unwrap();
        assert!((report.breakdown.two_qubit - 0.995).abs() < 1e-12);
        assert!(report.fidelity() < 1.0);
        assert!(report.fidelity_excluding_one_qubit() >= report.fidelity());
        assert!(report.execution_time_us() > 0.0);
    }

    #[test]
    fn invalid_program_propagates_error() {
        let arch = Architecture::for_qubits(2);
        let layout = Layout::row_major(&arch, 2, Zone::Compute).unwrap();
        let p = CompiledProgram::new(
            arch,
            2,
            layout,
            vec![Instruction::rydberg(vec![CzGate::new(q(0), q(1))])],
        );
        assert!(evaluate_program(&p).is_err());
    }
}
