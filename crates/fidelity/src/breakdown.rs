//! Per-factor fidelity breakdown.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The five multiplicative factors of the output fidelity (Eq. 1).
///
/// Each field is a fidelity in `[0, 1]`; the product of all five is the
/// estimated output fidelity of the program. Fig. 6 of the paper plots the
/// infidelity contribution of the last four factors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FidelityBreakdown {
    /// `f1^g1`: single-qubit gate factor.
    pub one_qubit: f64,
    /// `f2^g2`: two-qubit (CZ) gate factor.
    pub two_qubit: f64,
    /// `f_exc^(Σ n_i)`: excitation-error factor for non-interacting qubits
    /// left in the computation zone during Rydberg excitations.
    pub excitation: f64,
    /// `f_trans^N_trans`: SLM↔AOD transfer factor.
    pub transfer: f64,
    /// `Π_q (1 − T_q/T2)`: decoherence factor from idle time outside the
    /// storage zone.
    pub decoherence: f64,
}

impl FidelityBreakdown {
    /// A breakdown with every factor equal to 1 (perfect fidelity).
    #[must_use]
    pub fn perfect() -> Self {
        FidelityBreakdown {
            one_qubit: 1.0,
            two_qubit: 1.0,
            excitation: 1.0,
            transfer: 1.0,
            decoherence: 1.0,
        }
    }

    /// Product of all five factors.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.one_qubit * self.two_qubit * self.excitation * self.transfer * self.decoherence
    }

    /// Product of all factors except the single-qubit factor.
    ///
    /// The paper omits the 1Q term in fidelity comparisons because 1Q layers
    /// are executed identically by every compiler (Sec. 2.2).
    #[must_use]
    pub fn total_excluding_one_qubit(&self) -> f64 {
        self.two_qubit * self.excitation * self.transfer * self.decoherence
    }

    /// The infidelity contribution `1 - f` of each factor, in the order
    /// `(two_qubit, excitation, transfer, decoherence)` used by Fig. 6.
    #[must_use]
    pub fn infidelities(&self) -> [f64; 4] {
        [
            1.0 - self.two_qubit,
            1.0 - self.excitation,
            1.0 - self.transfer,
            1.0 - self.decoherence,
        ]
    }

    /// Negative natural log of the total fidelity; additive across factors
    /// and convenient for plotting on a log scale.
    #[must_use]
    pub fn log_infidelity(&self) -> f64 {
        -self.total().max(f64::MIN_POSITIVE).ln()
    }
}

impl Default for FidelityBreakdown {
    fn default() -> Self {
        Self::perfect()
    }
}

impl fmt::Display for FidelityBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fidelity {:.4e} (1q {:.4}, 2q {:.4}, exc {:.4}, trans {:.4}, deco {:.4})",
            self.total(),
            self.one_qubit,
            self.two_qubit,
            self.excitation,
            self.transfer,
            self.decoherence
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_breakdown_has_total_one() {
        let b = FidelityBreakdown::perfect();
        assert_eq!(b.total(), 1.0);
        assert_eq!(b.total_excluding_one_qubit(), 1.0);
        assert_eq!(b.infidelities(), [0.0; 4]);
        assert_eq!(FidelityBreakdown::default(), b);
    }

    #[test]
    fn total_is_product_of_factors() {
        let b = FidelityBreakdown {
            one_qubit: 0.9,
            two_qubit: 0.8,
            excitation: 0.7,
            transfer: 0.6,
            decoherence: 0.5,
        };
        assert!((b.total() - 0.9 * 0.8 * 0.7 * 0.6 * 0.5).abs() < 1e-12);
        assert!((b.total_excluding_one_qubit() - 0.8 * 0.7 * 0.6 * 0.5).abs() < 1e-12);
    }

    #[test]
    fn log_infidelity_is_positive_for_imperfect() {
        let b = FidelityBreakdown {
            two_qubit: 0.5,
            ..FidelityBreakdown::perfect()
        };
        assert!(b.log_infidelity() > 0.0);
        assert_eq!(FidelityBreakdown::perfect().log_infidelity(), 0.0);
    }

    #[test]
    fn display_contains_total() {
        let b = FidelityBreakdown::perfect();
        assert!(b.to_string().contains("fidelity"));
    }
}
