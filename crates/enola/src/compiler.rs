//! The end-to-end Enola-style compilation pipeline.

use crate::{partition_stages_mis, RevertRouter};
use powermove::{CompileContext, CompileError, CompilerBackend};
use powermove_circuit::{BlockProgram, Circuit, CzBlock, Segment};
use powermove_exec::{Parallelism, ThreadPool};
use powermove_hardware::{AodId, Architecture, HardwareError, Zone};
use powermove_schedule::{CollMove, CompiledProgram, Instruction, Layout};
use serde::{Deserialize, Serialize};

/// Configuration of the Enola baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnolaConfig {
    /// Node budget of the branch-and-bound MIS solver used per stage
    /// extraction. Larger budgets produce (provably) larger stages at the
    /// cost of compilation time, mimicking the solver-based scheduling of
    /// the original implementation.
    pub mis_node_budget: usize,
    /// Worker count of the MIS stage-extraction fan-out: independent CZ
    /// blocks are solved concurrently (the same shape as PowerMove's
    /// `StagePass`), keeping compile-time comparisons apples-to-apples as
    /// core counts grow. `0` means automatic (the `POWERMOVE_THREADS`
    /// environment variable, then the core count); any other value pins the
    /// pool size. The emitted program is byte-identical for every worker
    /// count.
    pub threads: usize,
}

impl EnolaConfig {
    /// Returns the configuration with the MIS fan-out pinned to `threads`
    /// workers (`0` restores automatic sizing).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

impl Default for EnolaConfig {
    fn default() -> Self {
        EnolaConfig {
            mis_node_budget: 200_000,
            threads: 0,
        }
    }
}

/// The Enola-style baseline compiler: MIS-based stage scheduling, fixed
/// initial layout and revert-to-initial movement, no storage zone.
#[derive(Debug, Clone, Default)]
pub struct EnolaCompiler {
    config: EnolaConfig,
}

impl EnolaCompiler {
    /// Creates a compiler with the given configuration.
    #[must_use]
    pub fn new(config: EnolaConfig) -> Self {
        EnolaCompiler { config }
    }

    /// The compiler configuration.
    #[must_use]
    pub fn config(&self) -> &EnolaConfig {
        &self.config
    }

    /// Compiles a circuit for the given architecture.
    ///
    /// # Errors
    ///
    /// Returns [`HardwareError::InsufficientCapacity`] if the computation
    /// zone cannot hold every qubit.
    pub fn compile(
        &self,
        circuit: &Circuit,
        arch: &Architecture,
    ) -> Result<CompiledProgram, HardwareError> {
        let mut ctx = CompileContext::new();
        let block_program = ctx.time("synthesis", |_| BlockProgram::from_circuit(circuit));
        self.compile_with_context(&block_program, arch, ctx)
    }

    /// Compiles an already-synthesized block program.
    ///
    /// # Errors
    ///
    /// Same as [`EnolaCompiler::compile`].
    pub fn compile_block_program(
        &self,
        block_program: &BlockProgram,
        arch: &Architecture,
    ) -> Result<CompiledProgram, HardwareError> {
        self.compile_with_context(block_program, arch, CompileContext::new())
    }

    fn compile_with_context(
        &self,
        block_program: &BlockProgram,
        arch: &Architecture,
        mut ctx: CompileContext,
    ) -> Result<CompiledProgram, HardwareError> {
        let n = block_program.num_qubits();
        if arch.grid().num_compute_sites() < n as usize {
            return Err(HardwareError::InsufficientCapacity {
                qubits: n,
                sites: arch.grid().num_compute_sites(),
            });
        }

        let initial_layout = Layout::row_major(arch, n, Zone::Compute).map_err(|_| {
            HardwareError::InsufficientCapacity {
                qubits: n,
                sites: arch.grid().num_compute_sites(),
            }
        })?;
        let router = RevertRouter::new(arch.clone(), initial_layout.clone());

        // Stage extraction is the expensive half of the Enola pipeline (the
        // branch-and-bound MIS search), and each commuting CZ block is
        // independent — the same shape as PowerMove's `StagePass`. Fan the
        // blocks out over the pool, merging each worker's scratch context
        // back in block order so timings/counters stay deterministic for
        // every worker count.
        let pool = ThreadPool::new(Parallelism::from_setting(self.config.threads));
        let budget = self.config.mis_node_budget;
        let cz_blocks: Vec<&CzBlock> = block_program
            .segments()
            .iter()
            .filter_map(|segment| match segment {
                Segment::Cz(block) => Some(block),
                Segment::OneQubit(_) => None,
            })
            .collect();
        let staged = pool.par_map_chunked(cz_blocks, |block| {
            let mut worker = CompileContext::scratch();
            let stages = worker.time("stage", |_| partition_stages_mis(block, budget));
            worker.count("stages", stages.len() as u64);
            (stages, worker)
        });
        let mut staged_blocks = Vec::with_capacity(staged.len());
        for (stages, worker) in staged {
            ctx.merge(worker);
            staged_blocks.push(stages);
        }
        let mut staged_blocks = staged_blocks.into_iter();

        let mut instructions: Vec<Instruction> = Vec::new();
        let mut num_stages = 0_usize;

        for segment in block_program.segments() {
            match segment {
                Segment::OneQubit(layer) => {
                    instructions.push(Instruction::one_qubit_layer(layer.gates().to_vec()));
                }
                Segment::Cz(_) => {
                    let stages = staged_blocks
                        .next()
                        .expect("one staged partition per CZ block");
                    for stage in stages {
                        let (forward, reverse) = ctx.time("route", |_| {
                            let forward = router.forward_moves(&stage);
                            let reverse = router.reverse_moves(&forward);
                            (forward, reverse)
                        });
                        ctx.time("moves", |ctx| {
                            let out = pack(router.group_moves(&forward), arch.num_aods());
                            let back = pack(router.group_moves(&reverse), arch.num_aods());
                            ctx.count("move_groups", (out.len() + back.len()) as u64);
                            instructions.extend(out);
                            instructions.push(Instruction::rydberg(stage));
                            instructions.extend(back);
                        });
                        num_stages += 1;
                    }
                }
            }
        }

        let metadata = ctx.finish("enola", false, num_stages, arch.num_aods());
        Ok(
            CompiledProgram::new(arch.clone(), n, initial_layout, instructions)
                .with_metadata(metadata),
        )
    }
}

impl CompilerBackend for EnolaCompiler {
    fn name(&self) -> &str {
        "enola"
    }

    fn config_description(&self) -> String {
        format!(
            "mis_node_budget={} threads={}",
            self.config.mis_node_budget, self.config.threads
        )
    }

    fn compile(
        &self,
        blocks: &BlockProgram,
        arch: &Architecture,
    ) -> Result<CompiledProgram, CompileError> {
        self.compile_block_program(blocks, arch)
            .map_err(CompileError::Hardware)
    }

    fn compile_circuit(
        &self,
        circuit: &Circuit,
        arch: &Architecture,
    ) -> Result<CompiledProgram, CompileError> {
        EnolaCompiler::compile(self, circuit, arch).map_err(CompileError::Hardware)
    }
}

/// Packs ordered collective-move groups onto the available AOD arrays.
fn pack(groups: Vec<Vec<powermove_schedule::SiteMove>>, num_aods: usize) -> Vec<Instruction> {
    let width = num_aods.max(1);
    groups
        .chunks(width)
        .map(|chunk| {
            Instruction::move_group(
                chunk
                    .iter()
                    .enumerate()
                    .map(|(i, moves)| CollMove::new(AodId::new(i), moves.clone()))
                    .collect(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermove_circuit::Qubit;
    use powermove_fidelity::evaluate_program;
    use powermove_schedule::validate;

    fn q(i: u32) -> Qubit {
        Qubit::new(i)
    }

    fn ring_circuit(n: u32) -> Circuit {
        let mut c = Circuit::new(n);
        for i in 0..n {
            c.h(q(i)).unwrap();
        }
        for i in 0..n {
            c.cz(q(i), q((i + 1) % n)).unwrap();
        }
        c
    }

    #[test]
    fn compiled_ring_is_valid() {
        let circuit = ring_circuit(8);
        let arch = Architecture::for_qubits(8);
        let p = EnolaCompiler::default().compile(&circuit, &arch).unwrap();
        assert!(validate(&p).is_ok());
        assert_eq!(p.cz_gate_count(), 8);
        assert!(!p.metadata().uses_storage);
        assert_eq!(p.metadata().compiler, "enola");
    }

    #[test]
    fn movement_reverts_to_initial_layout() {
        let circuit = ring_circuit(6);
        let arch = Architecture::for_qubits(6);
        let p = EnolaCompiler::default().compile(&circuit, &arch).unwrap();
        let trace = powermove_schedule::simulate(&p).unwrap();
        // After the program, every qubit is back at its initial site.
        for i in 0..6 {
            assert_eq!(
                trace.final_layout.site_of(q(i)),
                p.initial_layout().site_of(q(i))
            );
        }
    }

    #[test]
    fn idle_qubits_are_exposed_to_every_excitation() {
        // Qubits 4..8 never interact but sit in the computation zone.
        let mut circuit = Circuit::new(8);
        circuit.cz(q(0), q(1)).unwrap();
        circuit.cz(q(2), q(3)).unwrap();
        let arch = Architecture::for_qubits(8);
        let p = EnolaCompiler::default().compile(&circuit, &arch).unwrap();
        let report = evaluate_program(&p).unwrap();
        assert_eq!(report.trace.rydberg_stage_count, 1);
        assert_eq!(report.trace.excitation_exposure, 4);
        assert!(report.breakdown.excitation < 1.0);
    }

    #[test]
    fn transfer_count_doubles_versus_one_way_movement() {
        // One stage with one moved qubit: forward + reverse = 2 moves,
        // 2 transfers each.
        let mut circuit = Circuit::new(4);
        circuit.cz(q(0), q(1)).unwrap();
        let arch = Architecture::for_qubits(4);
        let p = EnolaCompiler::default().compile(&circuit, &arch).unwrap();
        assert_eq!(p.transfer_count(), 4);
    }

    #[test]
    fn capacity_error_for_tiny_grid() {
        let circuit = ring_circuit(10);
        let arch = Architecture::for_qubits(10)
            .with_grid(powermove_hardware::ZonedGrid::with_dims(2, 2, 4).unwrap());
        assert!(EnolaCompiler::default().compile(&circuit, &arch).is_err());
    }

    #[test]
    fn one_qubit_gates_preserved() {
        let circuit = ring_circuit(5);
        let arch = Architecture::for_qubits(5);
        let p = EnolaCompiler::default().compile(&circuit, &arch).unwrap();
        assert_eq!(p.one_qubit_gate_count(), 5);
    }

    #[test]
    fn multi_aod_packing_is_valid() {
        let circuit = ring_circuit(9);
        let arch = Architecture::for_qubits(9).with_num_aods(3);
        let p = EnolaCompiler::default().compile(&circuit, &arch).unwrap();
        assert!(validate(&p).is_ok());
    }

    #[test]
    fn parallel_stage_extraction_is_byte_identical() {
        let circuit = ring_circuit(12);
        let arch = Architecture::for_qubits(12);
        let reference = EnolaCompiler::new(EnolaConfig::default().with_threads(1))
            .compile(&circuit, &arch)
            .unwrap();
        let reference_bytes = serde_json::to_string(&reference.instructions().to_vec()).unwrap();
        for threads in [2, 4] {
            let parallel = EnolaCompiler::new(EnolaConfig::default().with_threads(threads))
                .compile(&circuit, &arch)
                .unwrap();
            assert_eq!(
                serde_json::to_string(&parallel.instructions().to_vec()).unwrap(),
                reference_bytes,
                "threads={threads} must not change the emitted program"
            );
            // Merged counters are deterministic too (timings are wall clocks
            // and legitimately differ).
            assert_eq!(
                serde_json::to_string(&parallel.metadata().counters).unwrap(),
                serde_json::to_string(&reference.metadata().counters).unwrap()
            );
        }
    }

    #[test]
    fn threads_knob_round_trips_through_config() {
        let config = EnolaConfig::default().with_threads(3);
        assert_eq!(config.threads, 3);
        let compiler = EnolaCompiler::new(config);
        assert!(compiler.config_description().contains("threads=3"));
        assert_eq!(EnolaConfig::default().threads, 0, "default is automatic");
    }

    #[test]
    fn empty_circuit_gives_empty_program() {
        let circuit = Circuit::new(3);
        let arch = Architecture::for_qubits(3);
        let p = EnolaCompiler::default().compile(&circuit, &arch).unwrap();
        assert_eq!(p.num_instructions(), 0);
    }
}
