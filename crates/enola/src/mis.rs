//! Maximum-independent-set based gate scheduling.
//!
//! Enola schedules each commuting CZ block by repeatedly solving a maximum
//! independent set problem on the gate conflict graph: the largest set of
//! gates sharing no qubit forms the next Rydberg stage. The original work
//! relies on external MIS solvers; this reimplementation uses an exact
//! branch-and-bound search with a configurable node budget and a greedy
//! incumbent, which reproduces both the schedule quality and the
//! substantially higher compilation cost relative to PowerMove's near-linear
//! edge colouring (the `T_comp` columns of Table 3).

use powermove_circuit::{CzBlock, CzGate, GateConflictGraph};
use std::collections::BTreeSet;

/// Finds a (near-)maximum independent set of the sub-graph induced by
/// `active` vertices.
///
/// A min-degree greedy solution seeds the incumbent; an exact
/// branch-and-bound search then improves it until it proves optimality or
/// exhausts `node_budget` search nodes. The returned set is therefore always
/// at least as large as the greedy solution and is optimal whenever the
/// budget suffices.
#[must_use]
pub fn maximum_independent_set(
    adjacency: &[Vec<usize>],
    active: &BTreeSet<usize>,
    node_budget: usize,
) -> Vec<usize> {
    if active.is_empty() {
        return Vec::new();
    }

    // Greedy incumbent: repeatedly take the active vertex with the fewest
    // active neighbours.
    let mut best = greedy_mis(adjacency, active);

    // Branch and bound over the active sub-graph.
    let mut budget = node_budget;
    let mut current: Vec<usize> = Vec::new();
    let candidates: Vec<usize> = active.iter().copied().collect();
    branch(
        adjacency,
        &candidates,
        active,
        &mut current,
        &mut best,
        &mut budget,
    );
    best
}

fn greedy_mis(adjacency: &[Vec<usize>], active: &BTreeSet<usize>) -> Vec<usize> {
    let mut remaining: BTreeSet<usize> = active.clone();
    let mut result = Vec::new();
    while !remaining.is_empty() {
        let v = *remaining
            .iter()
            .min_by_key(|&&v| {
                adjacency[v]
                    .iter()
                    .filter(|u| remaining.contains(u))
                    .count()
            })
            .expect("remaining is non-empty");
        result.push(v);
        remaining.remove(&v);
        for &u in &adjacency[v] {
            remaining.remove(&u);
        }
    }
    result
}

fn branch(
    adjacency: &[Vec<usize>],
    candidates: &[usize],
    allowed: &BTreeSet<usize>,
    current: &mut Vec<usize>,
    best: &mut Vec<usize>,
    budget: &mut usize,
) {
    if *budget == 0 {
        return;
    }
    *budget -= 1;

    if current.len() + candidates.len() <= best.len() {
        return; // Even taking every candidate cannot beat the incumbent.
    }
    let Some((&v, rest)) = candidates.split_first() else {
        if current.len() > best.len() {
            *best = current.clone();
        }
        return;
    };

    // Branch 1: include v, dropping its neighbours from the candidates.
    let neighbours: BTreeSet<usize> = adjacency[v]
        .iter()
        .copied()
        .filter(|u| allowed.contains(u))
        .collect();
    let included: Vec<usize> = rest
        .iter()
        .copied()
        .filter(|u| !neighbours.contains(u))
        .collect();
    current.push(v);
    branch(adjacency, &included, allowed, current, best, budget);
    current.pop();

    // Branch 2: exclude v.
    branch(adjacency, rest, allowed, current, best, budget);

    if current.len() > best.len() {
        *best = current.clone();
    }
}

/// Partitions a commuting CZ block into Rydberg stages by iterated maximum
/// independent sets: each stage is a (near-)maximum set of mutually
/// compatible gates among those not yet scheduled.
#[must_use]
pub fn partition_stages_mis(block: &CzBlock, node_budget: usize) -> Vec<Vec<CzGate>> {
    let graph = GateConflictGraph::from_block(block);
    let n = graph.num_gates();
    let adjacency: Vec<Vec<usize>> = (0..n).map(|i| graph.conflicts(i).to_vec()).collect();

    let mut remaining: BTreeSet<usize> = (0..n).collect();
    let mut stages = Vec::new();
    while !remaining.is_empty() {
        let mis = maximum_independent_set(&adjacency, &remaining, node_budget);
        debug_assert!(!mis.is_empty());
        for &v in &mis {
            remaining.remove(&v);
        }
        stages.push(mis.into_iter().map(|v| graph.gate(v)).collect());
    }
    stages
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermove_circuit::Qubit;

    fn q(i: u32) -> Qubit {
        Qubit::new(i)
    }

    fn block(edges: &[(u32, u32)]) -> CzBlock {
        CzBlock::from_gates(
            edges
                .iter()
                .map(|&(a, b)| CzGate::new(q(a), q(b)))
                .collect(),
        )
    }

    fn path_adjacency(n: usize) -> Vec<Vec<usize>> {
        (0..n)
            .map(|i| {
                let mut adj = Vec::new();
                if i > 0 {
                    adj.push(i - 1);
                }
                if i + 1 < n {
                    adj.push(i + 1);
                }
                adj
            })
            .collect()
    }

    #[test]
    fn mis_of_path_graph_is_alternating() {
        let adj = path_adjacency(5);
        let active: BTreeSet<usize> = (0..5).collect();
        let mis = maximum_independent_set(&adj, &active, 10_000);
        assert_eq!(mis.len(), 3);
    }

    #[test]
    fn mis_respects_independence() {
        let adj = path_adjacency(8);
        let active: BTreeSet<usize> = (0..8).collect();
        let mis = maximum_independent_set(&adj, &active, 10_000);
        let set: BTreeSet<usize> = mis.iter().copied().collect();
        for &v in &set {
            for &u in &adj[v] {
                assert!(!set.contains(&u));
            }
        }
    }

    #[test]
    fn tiny_budget_still_returns_greedy_solution() {
        let adj = path_adjacency(9);
        let active: BTreeSet<usize> = (0..9).collect();
        let mis = maximum_independent_set(&adj, &active, 0);
        assert!(mis.len() >= 4);
    }

    #[test]
    fn empty_active_set_gives_empty_mis() {
        let adj = path_adjacency(3);
        assert!(maximum_independent_set(&adj, &BTreeSet::new(), 100).is_empty());
    }

    #[test]
    fn matching_block_is_one_stage() {
        let stages = partition_stages_mis(&block(&[(0, 1), (2, 3), (4, 5)]), 10_000);
        assert_eq!(stages.len(), 1);
        assert_eq!(stages[0].len(), 3);
    }

    #[test]
    fn star_block_needs_one_stage_per_gate() {
        let stages = partition_stages_mis(&block(&[(0, 1), (0, 2), (0, 3)]), 10_000);
        assert_eq!(stages.len(), 3);
    }

    #[test]
    fn path_block_partitions_into_two_stages() {
        let stages = partition_stages_mis(&block(&[(0, 1), (1, 2), (2, 3), (3, 4)]), 10_000);
        assert_eq!(stages.len(), 2);
        let total: usize = stages.iter().map(Vec::len).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn every_stage_has_disjoint_qubits() {
        let stages = partition_stages_mis(
            &block(&[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 3)]),
            10_000,
        );
        for stage in &stages {
            let mut seen = BTreeSet::new();
            for g in stage {
                for qb in g.qubits() {
                    assert!(seen.insert(qb));
                }
            }
        }
        let total: usize = stages.iter().map(Vec::len).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn empty_block_gives_no_stages() {
        assert!(partition_stages_mis(&CzBlock::new(), 100).is_empty());
    }
}
