//! An Enola-style baseline compiler for neutral-atom quantum computers.
//!
//! Enola (Tan, Lin and Cong, 2024) is the state-of-the-art baseline the
//! PowerMove paper compares against (Sec. 3.1). This crate reimplements its
//! algorithmic structure from the paper's description:
//!
//! * **gate scheduling** by repeatedly extracting (near-)maximum independent
//!   sets of compatible CZ gates from the conflict graph of each commuting
//!   block — a branch-and-bound solver with a node budget stands in for the
//!   external MIS solvers the original uses ([`partition_stages_mis`]);
//! * **qubit allocation** on a fixed row-major initial layout in the
//!   computation zone;
//! * **qubit movement** that, for every stage, brings one qubit of each CZ
//!   pair to its partner's initial site, executes the global Rydberg
//!   excitation, and then *reverts every moved qubit to the initial layout*
//!   before the next stage (the behaviour PowerMove's continuous router
//!   eliminates, Fig. 3 of the paper);
//! * no storage-zone integration: every qubit remains in the computation
//!   zone and is exposed to every Rydberg excitation.
//!
//! The output is the same [`CompiledProgram`](powermove_schedule::CompiledProgram)
//! representation used by PowerMove, so both compilers are validated, timed
//! and scored by exactly the same machinery. [`EnolaCompiler`] implements
//! the [`CompilerBackend`](powermove::CompilerBackend) trait, so the
//! experiment harness drives it through the same backend registry as
//! PowerMove itself.
//!
//! # Example
//!
//! ```
//! use enola_baseline::{EnolaCompiler, EnolaConfig};
//! use powermove_circuit::{Circuit, Qubit};
//! use powermove_hardware::Architecture;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut circuit = Circuit::new(4);
//! circuit.cz(Qubit::new(0), Qubit::new(1))?;
//! circuit.cz(Qubit::new(1), Qubit::new(2))?;
//! let program = EnolaCompiler::new(EnolaConfig::default())
//!     .compile(&circuit, &Architecture::for_qubits(4))?;
//! assert_eq!(program.cz_gate_count(), 2);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod compiler;
mod mis;
mod router;

pub use compiler::{EnolaCompiler, EnolaConfig};
pub use mis::{maximum_independent_set, partition_stages_mis};
pub use router::RevertRouter;
