//! Revert-to-initial-layout routing (the movement scheme of Enola).
//!
//! For every Rydberg stage, one qubit of each CZ pair is moved to its
//! partner's site in the fixed initial layout; after the excitation every
//! moved qubit is returned to its own initial site, spatially separating the
//! qubits so the next stage cannot cluster (Sec. 3.1 and Fig. 3 of the
//! PowerMove paper). All qubits live in the computation zone.

use powermove_circuit::{CzGate, Qubit};
use powermove_hardware::{Architecture, SiteId};
use powermove_schedule::{Layout, SiteMove};

/// The revert-based router of the Enola baseline.
#[derive(Debug, Clone)]
pub struct RevertRouter {
    arch: Architecture,
    initial: Layout,
}

impl RevertRouter {
    /// Creates a router over the fixed initial layout.
    #[must_use]
    pub fn new(arch: Architecture, initial: Layout) -> Self {
        RevertRouter { arch, initial }
    }

    /// The fixed initial layout.
    #[must_use]
    pub fn initial_layout(&self) -> &Layout {
        &self.initial
    }

    /// The target architecture.
    #[must_use]
    pub fn architecture(&self) -> &Architecture {
        &self.arch
    }

    /// The site a qubit occupies in the initial layout.
    ///
    /// # Panics
    ///
    /// Panics if the qubit is not placed in the initial layout.
    #[must_use]
    pub fn home_site(&self, q: Qubit) -> SiteId {
        self.initial
            .site_of(q)
            .expect("every qubit is placed in the initial layout")
    }

    /// The forward moves of a stage: for each gate, the qubit of the pair
    /// with the longer distance-to-partner stays put and the other moves to
    /// its partner's home site.
    ///
    /// Because every qubit starts at its own home site and the stage's gates
    /// are qubit-disjoint, the forward moves never cluster qubits.
    #[must_use]
    pub fn forward_moves(&self, gates: &[CzGate]) -> Vec<SiteMove> {
        gates
            .iter()
            .map(|gate| {
                // Move the higher-indexed qubit onto the lower-indexed one's
                // home site (a fixed, deterministic convention).
                let mover = gate.hi();
                let target = self.home_site(gate.lo());
                SiteMove::new(mover, self.home_site(mover), target)
            })
            .collect()
    }

    /// The reverse moves that undo `forward`: every moved qubit returns to
    /// its home site.
    #[must_use]
    pub fn reverse_moves(&self, forward: &[SiteMove]) -> Vec<SiteMove> {
        forward
            .iter()
            .map(|m| SiteMove::new(m.qubit, m.to, m.from))
            .collect()
    }

    /// Groups moves into AOD-compatible collective moves using first-fit in
    /// the given order (Enola does not perform the distance-aware sorting of
    /// PowerMove's grouping).
    #[must_use]
    pub fn group_moves(&self, moves: &[SiteMove]) -> Vec<Vec<SiteMove>> {
        let mut groups: Vec<Vec<SiteMove>> = Vec::new();
        for m in moves {
            let tm = m.to_trap_move(&self.arch);
            let slot = groups.iter_mut().find(|group| {
                group
                    .iter()
                    .all(|other| !tm.conflicts_with(&other.to_trap_move(&self.arch)))
            });
            match slot {
                Some(group) => group.push(*m),
                None => groups.push(vec![*m]),
            }
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermove_hardware::Zone;

    fn q(i: u32) -> Qubit {
        Qubit::new(i)
    }

    fn router(n: u32) -> RevertRouter {
        let arch = Architecture::for_qubits(n);
        let layout = Layout::row_major(&arch, n, Zone::Compute).unwrap();
        RevertRouter::new(arch, layout)
    }

    #[test]
    fn forward_moves_one_qubit_per_gate() {
        let r = router(6);
        let gates = vec![CzGate::new(q(0), q(1)), CzGate::new(q(2), q(3))];
        let fwd = r.forward_moves(&gates);
        assert_eq!(fwd.len(), 2);
        assert_eq!(fwd[0].qubit, q(1));
        assert_eq!(fwd[0].to, r.home_site(q(0)));
        assert_eq!(fwd[1].qubit, q(3));
        assert_eq!(fwd[1].to, r.home_site(q(2)));
    }

    #[test]
    fn reverse_moves_undo_forward() {
        let r = router(6);
        let gates = vec![CzGate::new(q(0), q(5))];
        let fwd = r.forward_moves(&gates);
        let rev = r.reverse_moves(&fwd);
        assert_eq!(rev.len(), 1);
        assert_eq!(rev[0].qubit, q(5));
        assert_eq!(rev[0].from, fwd[0].to);
        assert_eq!(rev[0].to, r.home_site(q(5)));
    }

    #[test]
    fn grouping_is_conflict_free() {
        let r = router(9);
        let gates = vec![
            CzGate::new(q(0), q(8)),
            CzGate::new(q(1), q(7)),
            CzGate::new(q(2), q(6)),
        ];
        let fwd = r.forward_moves(&gates);
        let groups = r.group_moves(&fwd);
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, fwd.len());
        for group in &groups {
            for (i, a) in group.iter().enumerate() {
                for b in &group[i + 1..] {
                    assert!(!a
                        .to_trap_move(r.architecture())
                        .conflicts_with(&b.to_trap_move(r.architecture())));
                }
            }
        }
    }

    #[test]
    fn empty_stage_has_no_moves() {
        let r = router(4);
        assert!(r.forward_moves(&[]).is_empty());
        assert!(r.group_moves(&[]).is_empty());
    }
}
