//! Umbrella crate for the PowerMove reproduction workspace.
//!
//! This crate re-exports the public API of every workspace member so that the
//! runnable examples under `examples/` and the integration tests under
//! `tests/` can use a single import root. Downstream users should depend on
//! the individual crates (`powermove`, `powermove-circuit`, ...) directly.

pub use enola_baseline as enola;
pub use powermove;
pub use powermove_benchmarks as benchmarks;
pub use powermove_circuit as circuit;
pub use powermove_exec as exec;
pub use powermove_fidelity as fidelity;
pub use powermove_hardware as hardware;
pub use powermove_schedule as schedule;
pub use powermove_service as service;
